#pragma once

/// \file lookahead.hpp
/// The allocation-free, candidate-pruned lookahead simulation engine behind
/// Lynceus' long-sighted decisions (paper §4.3, Algorithm 2).
///
/// A decision simulates, for every screened budget-viable root x, an
/// exploration path of up to LA further steps; each step's speculated cost
/// is discretized into K Gauss–Hermite branches and each branch refits the
/// cost model with the fantasy sample. The naive implementation deep-copies
/// the optimizer state Σ and re-predicts the *entire* configuration space
/// at every branch, making a path node cost O(|space| · trees · depth) plus
/// O(|space|) of copying. This engine removes both:
///
///  * **Delta states.** Each worker owns a single path state (training
///    rows, targets, feasibility flags). Descending into a branch pushes
///    the fantasy sample; returning pops it. No per-branch copies, and no
///    per-config `tested` array at all — testedness is implied by the
///    candidate list.
///  * **Candidate pruning.** The ascending list of untested configurations
///    shrinks by exactly the path's own step as it descends, and the model
///    is only asked to predict that list (Regressor::predict_subset), so a
///    path node costs O(candidates) instead of O(|space|). The full-space
///    predict_all runs once per decision, at the root.
///  * **Fused acquisition.** One pass per node computes (P(c ≤ β), EIc)
///    per candidate and keeps the running argmax; the root pass stores the
///    EIc values the screening sort and stop-rule reuse, instead of
///    re-deriving prob_within/EI per consumer.
///
/// Complexity per simulated path node: one ensemble refit on |S|+depth
/// samples plus one O(candidates) batched prediction and one O(candidates)
/// fused scan — down from O(|space|) prediction and O(|space|) state
/// copying. After the first simulated path warms the buffers, simulate()
/// performs zero heap allocation under the default bagging model (asserted
/// by the test suite via util/alloc_count.hpp). The batched predictions
/// run over the ensemble's flat SoA tree layout with ensemble-owned
/// scratch that capacity-warms to the space bound on first use, so the
/// guarantee holds across batch sizes and route switches — not just for
/// shapes seen during warm-up (see model/decision_tree.hpp, "flat-layout
/// determinism contract").
///
/// Determinism: the engine reproduces the naive reference trajectory
/// bit-for-bit — same derive_seed call structure, same candidate scan
/// order (ascending ids), same floating-point accumulation order in the
/// batched predictions (see Regressor's batched-prediction contract).
///
/// Two engines share this machinery: LookaheadEngine for the
/// single-constraint problem (§4.3) and MultiConstraintEngine for the §4.4
/// multi-constraint extension, where a path node evaluates a *vector* of
/// objectives (cost + one metric per constraint) and joint speculation over
/// the Cartesian Gauss–Hermite product becomes flat per-depth workspace
/// buffers instead of per-combination state copies. Both can consult a
/// RootCache so that repeated decisions (warm-started or recurrent tuning
/// rounds) skip the root fit + full-space prediction entirely.
///
/// ## Incremental-refit determinism contract
///
/// With `Options::incremental_refit` **off (the default)** every simulated
/// branch refits its ensemble from scratch, and trajectories are pinned
/// **bit-for-bit** against the committed naive references
/// (reference::NaiveLynceus in core/lookahead_reference.hpp,
/// reference::NaiveMultiConstraintLynceus / McSimulator in
/// core/constraints_reference.hpp) — the golden-trajectory tests enforce
/// this for LA 0/1/2, one and two constraints, cache on or off. Nothing
/// about the default path changes when the flag exists but is off.
///
/// With the flag **on** (and a model supporting it — the bagging ensemble;
/// the GP silently falls back to from-scratch refits), a branch that
/// appends one fantasy sample *updates* the parent node's fitted ensemble
/// instead of refitting it: per-depth model slots are assign_fitted() from
/// the parent (the decision's root model at depth 0) and
/// append_and_update() with the fantasy sample — Oza–Russell online
/// bagging with per-tree leaf updates and leaf re-splits (see
/// model/bagging.hpp). What is and is not pinned then:
///
///  * **Pinned (bitwise):** repeatability. The same (samples, seeds, flag)
///    reproduce byte-identical trajectories, across runs, build modes and
///    worker counts, with the cache on or off — the cached model snapshot
///    restored on a hit carries the same bootstrap membership a refit
///    would recapture, and a hit without a usable snapshot refits
///    deterministically.
///  * **Not pinned:** equality with the flag-off trajectory. Incremental
///    fits are statistically equivalent, not bitwise equal, to
///    from-scratch fits (different bootstrap composition for the appended
///    sample), so flag-on trajectories may diverge from the golden ones.
///    The differential suite (tests/test_incremental_refit.cpp) pins the
///    agreement: prediction deltas within a calibrated tolerance of the
///    from-scratch fit's own seed-to-seed variability, and
///    trajectory-level cost/regret parity with both naive references.
///
/// **derive_seed scheme.** The flag does not change the seed call
/// structure, only its interpretation: branch i of a node still derives
/// `branch_seed = derive_seed(path_seed, i + 1)` (and, multi-constraint,
/// `derive_seed(branch_seed, objective)` per objective) — flag off that
/// value seeds the from-scratch refit, flag on it becomes the
/// append_and_update update seed, which the ensemble splits into
/// per-tree streams via derive_seed(derive_seed(update_seed,
/// kIncrementalStream), tree). Incremental and from-scratch fits thus
/// consume disjoint, individually well-mixed seed streams and each path
/// is internally deterministic under either flag value.
///
/// ## Pooled-determinism contract (branch parallelism)
///
/// `Options::branch_pool` parallelizes *inside* a root simulation: the
/// depth-0 fantasy-branch fan-out — the K Gauss–Hermite branches of a
/// LookaheadEngine node, the pruned K^(I+1) joint-speculation combos of a
/// MultiConstraintEngine node — is split into at most
/// `branch_pool->worker_count() + 1` contiguous index ranges by
/// util::ThreadPool::parallel_ranges' static partition (pure index
/// arithmetic; independent of scheduling). What keeps pooled and serial
/// trajectories **byte-identical**:
///
///  * **Branch independence.** A branch fully reverts its Σ deltas before
///    the next branch runs, so no branch ever observes another's state —
///    the serial loop is already a sequence of independent computations
///    plus an ordered reduction.
///  * **Per-worker replicas.** Each partition runs on its own complete
///    workspace replica (path state, per-depth candidate/prediction
///    buffers, from-scratch model, and per-depth incremental-model slots —
///    the PR 3 `Level::inc_model(s)` replicated per worker). Shared
///    per-node inputs (quadrature nodes / pruned combos, the child
///    candidate list, the root models incremental branches assign_fitted
///    from) are read-only for the whole section.
///  * **Fixed reduction order.** Every branch writes its (cost, reward)
///    contribution into its own slot; the calling thread reduces the slots
///    in ascending branch order after the section completes, reproducing
///    the serial loop's floating-point accumulation order exactly. The
///    fused Γ/EIc scans run entirely inside their branch, so their
///    argmax/tie-break order is untouched.
///
/// Deeper-depth fan-outs stay serial within their branch (the partitions
/// already saturate the pool; nesting would only add dispatch overhead).
/// **Bit-pinned:** trajectories for any (pool, worker-count) choice,
/// including pool off, with incremental refit on or off, cache on or off —
/// the golden-trajectory and pooled-vs-serial suites enforce this.
/// **Not pinned:** wall-clock timing and which thread computes which
/// branch. simulate() remains zero-allocation after warm-up with the pool
/// on (parallel_ranges coordinates through a preallocated per-workspace
/// section; asserted process-wide by the test suite via
/// util::AllocCountAllThreadsGuard).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/types.hpp"
#include "math/gauss_hermite.hpp"
#include "model/regressor.hpp"
#include "util/thread_pool.hpp"

namespace lynceus::core {

/// §4.4 "Setup costs": monetary cost of switching the deployed
/// configuration from `current` (nullopt = nothing deployed yet) to `next`.
using SetupCostFn =
    std::function<double(std::optional<ConfigId> current, ConfigId next)>;

/// Reward and cost of an exploration path (return of ExplorePaths).
struct PathValue {
  double reward = 0.0;
  double cost = 0.0;
};

/// Cross-decision cache of root-level model work (ROADMAP "Root-level
/// result caching").
///
/// **Key.** A root fit is fully determined by the triple
///   (training rows, per-objective target vectors, derive_seed fit seed):
/// the feature matrix is immutable per space and every Regressor is
/// deterministic given its seed. The cache therefore maps that key to the
/// full-space predictions of every objective model (plus, optionally, a
/// clone of each fitted model — see Options::store_models). A hit is only
/// ever declared on an *exact* key match, which keeps trajectories
/// bit-identical with the cache on or off: the cached predictions are the
/// very doubles the skipped refit would recompute.
///
/// **Invalidation.** Consecutive decisions of one tuning run extend the
/// training set by appending samples, so an entry whose key is a strict
/// prefix of the probe (same ids, same target values, any seed) is simply
/// a miss — it stays cached so a warm-start re-run of the same lineage can
/// still hit it. An entry with the probe's objective count whose rows are
/// a length-wise prefix of the probe's rows but whose shared target
/// values mismatch belongs to a diverged history (different runner,
/// different problem instance): it can never hit again and is dropped
/// immediately, counted in Stats::invalidations. Entries with a different
/// objective count or space size are a plain miss and are left alone (a
/// single- and a multi-constraint engine may share one cache). Beyond
/// that, entries are evicted least-recently used once `capacity` is
/// exceeded.
///
/// **Sharing contract.** The key cannot observe the model configuration:
/// it assumes a fitted model is fully determined by (targets, fit seed).
/// Share one instance only across runs using the same model factory and
/// hyper-parameters — mixing model configurations in one cache returns
/// the other configuration's predictions on a key collision. The space
/// size is part of the key (`space_rows`), so mixing *spaces* is safe and
/// simply never hits. Unrelated jobs whose bootstrap row ids coincide but
/// whose measured targets differ thrash each other's entries through the
/// divergence rule; give such jobs separate caches.
///
/// Not thread-safe: engines consult it only from begin_decision, which is
/// already single-threaded by contract. Share one instance across
/// optimizer runs (LynceusOptions::root_cache /
/// MultiConstraintOptions::root_cache) to reuse root work across
/// warm-started runs of a recurrent job. Storing costs one O(space)
/// prediction copy per decision; engines given no cache skip the
/// machinery entirely.
class RootCache {
 public:
  struct Options {
    /// Maximum number of cached roots; 0 disables the cache.
    std::size_t capacity = 8;
    /// Also snapshot the fitted models via Regressor::clone() so a hit
    /// restores the root tree set, not just its predictions (groundwork
    /// for incremental refits of a cached root). Models whose clone()
    /// returns null are stored as predictions only.
    bool store_models = false;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
  };

  struct Entry {
    std::vector<std::uint32_t> rows;
    std::vector<std::vector<double>> targets;  ///< [objective][sample]
    std::uint64_t fit_seed = 0;
    std::size_t space_rows = 0;  ///< configuration-space size (key part)
    std::vector<std::vector<model::Prediction>> preds;  ///< [objective][id]
    std::vector<std::unique_ptr<model::Regressor>> models;  ///< may be null
    std::uint64_t tick = 0;  ///< LRU stamp
  };

  RootCache();
  explicit RootCache(Options options);

  /// Exact-match lookup (`space_rows` = the probing engine's space size,
  /// part of the key); counts a hit or a miss, dropping diverged entries
  /// (see invalidation rules above). The returned pointer is only valid
  /// until the next lookup()/store()/clear() — both can erase or move
  /// entries; copy what you need immediately.
  [[nodiscard]] const Entry* lookup(
      const std::vector<std::uint32_t>& rows,
      const std::vector<const std::vector<double>*>& targets,
      std::uint64_t fit_seed, std::size_t space_rows);

  /// Stores a fitted root (copies rows/targets/predictions; clones the
  /// models when Options::store_models is set). `preds` and `models` are
  /// parallel to `targets`; `models` entries may be null. No-op when the
  /// key is already cached or capacity is 0.
  void store(const std::vector<std::uint32_t>& rows,
             const std::vector<const std::vector<double>*>& targets,
             std::uint64_t fit_seed,
             const std::vector<const std::vector<model::Prediction>*>& preds,
             const std::vector<const model::Regressor*>& models);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear();

 private:
  [[nodiscard]] bool key_matches(
      const Entry& e, const std::vector<std::uint32_t>& rows,
      const std::vector<const std::vector<double>*>& targets,
      std::uint64_t fit_seed, std::size_t space_rows) const;
  /// True when `e` shares `rows`/`targets` as a prefix (same lineage).
  [[nodiscard]] bool is_prefix_of(
      const Entry& e, const std::vector<std::uint32_t>& rows,
      const std::vector<const std::vector<double>*>& targets) const;

  Options options_;
  Stats stats_;
  std::uint64_t tick_ = 0;
  std::vector<Entry> entries_;
  Entry spare_;  ///< last evicted entry, recycled by the next store
};

class LookaheadEngine {
 public:
  struct Options {
    unsigned lookahead = 2;           ///< LA
    unsigned gh_points = 3;           ///< K branches per simulated step
    double gamma = 0.9;               ///< reward discount
    double feasibility_quantile = 0.99;  ///< Γ filter quantile
    SetupCostFn setup_cost;           ///< optional §4.4 extension
    /// Root cache to consult and fill (not owned; must outlive the
    /// engine). Null disables caching entirely — decisions then pay no
    /// store overhead. See the RootCache sharing contract.
    RootCache* root_cache = nullptr;
    /// Opt-in incremental ensemble refit of simulated branches (see the
    /// file-level determinism contract). Off by default: the pinned
    /// golden-trajectory semantics are bit-identical with the flag off.
    /// Ignored (from-scratch refits) when the model factory's regressor
    /// does not support incremental updates.
    bool incremental_refit = false;
    /// Optional intra-root branch parallelism (see the pooled-determinism
    /// contract in the file header): the depth-0 branch fan-out of every
    /// simulate() call is statically range-partitioned across this pool,
    /// each partition on its own workspace replica, contributions reduced
    /// in branch order — trajectories are byte-identical to serial runs.
    /// Null (or a zero-worker pool) = serial branches. Not owned; must
    /// outlive the engine.
    util::ThreadPool* branch_pool = nullptr;
  };

  /// `workers` is the maximum number of concurrent simulate() calls; one
  /// model + path-state workspace is preallocated per worker. `problem`
  /// must outlive the engine.
  LookaheadEngine(const OptimizationProblem& problem, Options options,
                  const model::ModelFactory& factory, std::size_t workers);

  /// Starts a decision: snapshots the optimizer's samples into the root
  /// state Σ, refits the root model with `fit_seed`, runs the one
  /// full-space prediction of the decision, and the fused root acquisition
  /// pass (incumbent y*, viable set Γ in ascending id order, per-candidate
  /// EIc). Not thread-safe against concurrent simulate() calls.
  void begin_decision(const std::vector<Sample>& samples,
                      double remaining_budget, std::uint64_t fit_seed);

  /// Root-model predictions for every configuration (valid after
  /// begin_decision).
  [[nodiscard]] const std::vector<model::Prediction>& root_predictions()
      const noexcept {
    return root_preds_;
  }

  /// Incumbent y* of the current decision.
  [[nodiscard]] double incumbent() const noexcept { return y_star_; }

  /// Budget-viable untested configurations Γ, ascending.
  [[nodiscard]] const std::vector<ConfigId>& viable() const noexcept {
    return viable_;
  }

  /// max_{x ∈ Γ} EIc(x); 0 when Γ is empty (EIc is never negative).
  [[nodiscard]] double max_viable_eic() const noexcept {
    return max_viable_eic_;
  }

  /// Root EIc(x) from the fused pass. Only meaningful for x ∈ Γ.
  [[nodiscard]] double root_eic(ConfigId id) const { return eic_by_id_[id]; }

  /// Fills `out` with the roots to simulate: all of Γ, or when
  /// `width > 0` and Γ is larger, the `width` best by the one-step
  /// EIc/E[cost] score (implementation approximation, see DESIGN.md §5).
  void screened_roots(unsigned width, std::vector<ConfigId>& out) const;

  /// ExplorePaths (Algorithm 2) rooted at `root` (must be in Γ). Safe to
  /// call concurrently from up to `workers` threads between two
  /// begin_decision calls.
  [[nodiscard]] PathValue simulate(ConfigId root, std::uint64_t path_seed);

  [[nodiscard]] const model::FeatureMatrix& feature_matrix() const noexcept {
    return fm_;
  }

  /// Root-cache hit/miss/invalidation counters of Options::root_cache
  /// (all zero when caching is disabled).
  [[nodiscard]] const RootCache::Stats& cache_stats() const noexcept {
    static const RootCache::Stats kNone{};
    return cache_ != nullptr ? cache_->stats() : kNone;
  }

 private:
  /// Per-depth, per-worker buffers of the recursion.
  struct Level {
    std::vector<std::uint32_t> cands;       ///< untested ids, ascending
    std::vector<model::Prediction> preds;   ///< parallel to cands
    std::vector<math::QuadraturePoint> nodes;  ///< K branch points
    /// Incremental mode only: this depth's model, assign_fitted() from the
    /// parent's (root model at depth 0) and appended with the branch's
    /// fantasy sample. Null when incremental refit is off.
    std::unique_ptr<model::Regressor> inc_model;
  };

  /// One worker's exclusive state: a model instance plus the single
  /// delta-maintained path state Σ.
  struct Workspace {
    std::unique_ptr<model::Regressor> model;
    std::vector<std::uint32_t> rows;  ///< training rows (real + fantasy)
    std::vector<double> y;            ///< observed / speculated costs
    std::vector<char> feasible;       ///< per-sample feasibility
    std::vector<Level> levels;
    std::uint64_t epoch = 0;  ///< decision this path state mirrors
    /// Branch parallelism only (primary workspaces; see the
    /// pooled-determinism contract): per-branch contribution slots
    /// reduced in branch order, and the preallocated parallel_ranges
    /// control block. Empty / null when branch parallelism is off. The
    /// workspace replicas the partitions run on live in the engine-wide
    /// shared pool (branch_workspaces_), not per primary.
    std::vector<PathValue> branch_value;
    std::vector<char> branch_taken;
    std::unique_ptr<util::ThreadPool::RangeSection> section;
  };

  [[nodiscard]] double setup_cost(const std::optional<ConfigId>& from,
                                  ConfigId to) const {
    return options_.setup_cost ? options_.setup_cost(from, to) : 0.0;
  }

  /// Exactly `prob_within(beta, pred) >= feasibility_quantile`, without
  /// evaluating the normal cdf: `viable_z_` is the smallest double z with
  /// norm_cdf(z) >= q (found once by bisection), so comparing the z-score
  /// against it reproduces the cdf comparison decision bit-for-bit while
  /// replacing an erfc call per candidate with a subtract-divide-compare.
  [[nodiscard]] bool budget_viable(double beta,
                                   const model::Prediction& pred) const
      noexcept {
    if (pred.stddev <= 0.0) return beta >= pred.mean;
    return (beta - pred.mean) / pred.stddev >= viable_z_;
  }

  PathValue explore(Workspace& ws, std::size_t depth, ConfigId x,
                    double x_mean, double x_stddev, double x_eic, double beta,
                    const std::optional<ConfigId>& chi,
                    const std::vector<std::uint32_t>& cands,
                    unsigned steps_left, std::uint64_t path_seed);

  /// One depth-`depth` fantasy branch (Algorithm 2 lines 8-25): pushes the
  /// fantasy sample on `ws`, refits/appends the branch model, runs the
  /// fused NextStep scan and recurses into the chosen candidate. `shared`
  /// supplies the node's read-only inputs (quadrature nodes, child
  /// candidate list): serial callers pass ws.levels[depth] itself, the
  /// branch-parallel partitions pass the primary workspace's level.
  /// Returns true and fills `out` when the branch found a viable
  /// continuation to recurse into.
  bool explore_branch(Workspace& ws, std::size_t depth, std::size_t i,
                      ConfigId x, double x_mean, double switch_cost,
                      double beta, double cap, const Level& shared,
                      unsigned steps_left, std::uint64_t path_seed,
                      PathValue& out);

  /// Re-seeds `ws`'s path state Σ from the decision's root snapshot when
  /// it mirrors an older decision; marks it dirty for the caller to
  /// restore (see simulate()).
  void sync_workspace(Workspace& ws);

  Workspace* acquire_workspace();
  void release_workspace(Workspace* ws);

  /// Shared branch-replica pool (branch parallelism only). Sized to the
  /// maximum number of partitions that can execute simultaneously —
  /// pool workers + primary workspaces, capped by the total partition
  /// count — instead of one replica set per primary, which would grow
  /// O(workers²). Replica identity cannot affect results: every field a
  /// partition consumes is either re-synced from the decision's root
  /// state (epoch check) or fully overwritten per branch. acquire blocks
  /// (never in practice: the pool is sized for the worst case) and is
  /// allocation-free. The free list is a FIFO ring, not a stack: every
  /// acquisition takes the oldest-released replica, so a bounded number
  /// of warm-up simulations deterministically rotates through (and sizes
  /// the buffers of) every replica — with a LIFO stack, replicas past the
  /// peak concurrency depth would stay cold and their first use would
  /// allocate long after "warm-up", which the zero-alloc suite forbids.
  Workspace* acquire_branch_workspace();
  void release_branch_workspace(Workspace* ws);

  const OptimizationProblem& problem_;
  const Options options_;
  const model::FeatureMatrix fm_;
  const math::GaussHermite quadrature_;

  RootCache* cache_ = nullptr;  ///< options_.root_cache; null = disabled

  // Root-cache key scratch (rebuilt per decision, capacity reused).
  std::vector<const std::vector<double>*> key_targets_;
  std::vector<const std::vector<model::Prediction>*> key_preds_;
  std::vector<const model::Regressor*> key_models_;

  // Root snapshot of the current decision.
  std::unique_ptr<model::Regressor> root_model_;
  std::vector<std::uint32_t> root_rows_;
  std::vector<double> root_y_;
  std::vector<char> root_feasible_;
  std::vector<std::uint32_t> root_cands_;  ///< untested ids, ascending
  std::vector<char> tested_;               ///< scratch for root_cands_
  std::vector<model::Prediction> root_preds_;
  std::vector<ConfigId> viable_;
  std::vector<double> eic_by_id_;
  double root_beta_ = 0.0;
  std::optional<ConfigId> root_chi_;
  double y_star_ = 0.0;
  double max_viable_eic_ = 0.0;
  double viable_z_ = 0.0;
  std::uint64_t epoch_ = 0;
  /// Options::incremental_refit and the model actually supports it.
  bool incremental_ok_ = false;
  /// Static partitions of the depth-0 branch fan-out (1 = serial).
  std::size_t branch_parts_ = 1;

  std::vector<Workspace> workspaces_;
  std::mutex pool_mutex_;
  std::vector<Workspace*> free_workspaces_;

  std::vector<std::unique_ptr<Workspace>> branch_workspaces_;
  /// FIFO ring over branch_workspaces_ (see acquire_branch_workspace):
  /// fixed capacity, pop at branch_head_, push at head + free count.
  std::vector<Workspace*> free_branch_;
  std::size_t branch_head_ = 0;
  std::size_t branch_free_ = 0;
  std::mutex branch_mutex_;
  std::condition_variable branch_cv_;
};

/// The multi-constraint twin of LookaheadEngine (paper §4.4): path
/// simulation over a *vector* of objectives — the job cost plus one
/// regression target per auxiliary constraint.
///
/// Differences from the single-constraint engine, all pinned bit-for-bit
/// against reference::McSimulator (core/constraints_reference.hpp) by the
/// golden-trajectory tests:
///  * each node fits I+1 models (cost + per-constraint metrics) on the
///    same rows with per-objective derived seeds;
///  * a simulated step speculates *jointly*: the Cartesian product of the
///    per-objective Gauss–Hermite discretizations, pruned of combinations
///    below `prune_weight` and renormalized, becomes the branch set. The
///    combinations live in flat per-depth buffers (values, weights,
///    metrics) sized K^(I+1) once at construction — no per-combination
///    heap state;
///  * the acquisition multiplies every constraint-satisfaction
///    probability into EIc. The fused next-step scan prunes on the
///    cost-only EI upper bound (every probability factor is <= 1, so the
///    single-constraint bound holds a fortiori), and since the product
///    only shrinks as factors are multiplied in, each partial product
///    <= the running best exits the candidate early — the argmax (first
///    index attaining the max) is unchanged.
///
/// Like LookaheadEngine, simulate() performs zero heap allocation after
/// warm-up, and begin_decision consults the RootCache so repeated root
/// states (warm-started runs) skip all I+1 root fits + full-space
/// predictions.
class MultiConstraintEngine {
 public:
  struct Options {
    unsigned lookahead = 1;
    unsigned gh_points = 3;
    double gamma = 0.9;
    double feasibility_quantile = 0.99;
    /// Joint-speculation combinations below this weight are pruned.
    double prune_weight = 1e-3;
    /// Per-constraint thresholds t_i(x), in constraint order. Must be pure
    /// functions of x (they are evaluated once per configuration at
    /// construction).
    std::vector<std::function<double(ConfigId)>> thresholds;
    /// Root cache to consult and fill (not owned); null disables caching.
    RootCache* root_cache = nullptr;
    /// Opt-in incremental refit of all I+1 per-branch ensembles (see the
    /// file-level determinism contract). Off by default; ignored when the
    /// model does not support incremental updates.
    bool incremental_refit = false;
    /// Optional intra-root branch parallelism over the depth-0 pruned
    /// joint-speculation combo scan (see the pooled-determinism contract
    /// in the file header) — byte-identical trajectories, serial or
    /// pooled. Null (or a zero-worker pool) = serial. Not owned.
    util::ThreadPool* branch_pool = nullptr;
  };

  MultiConstraintEngine(const OptimizationProblem& problem, Options options,
                        const model::ModelFactory& factory,
                        std::size_t workers);

  /// Starts a decision from the optimizer's root state: `y_metric[c]`
  /// holds the measured values of constraint c aligned with `rows`,
  /// `feasible` the joint (deadline and every constraint) per-sample
  /// feasibility flags. Fits cost + metric models (or restores them from
  /// the root cache), runs the full-space predictions, the incumbent rule
  /// and the fused Γ/EIc root pass. Not thread-safe against concurrent
  /// simulate() calls.
  void begin_decision(const std::vector<std::uint32_t>& rows,
                      const std::vector<double>& y_cost,
                      const std::vector<std::vector<double>>& y_metric,
                      const std::vector<char>& feasible,
                      double remaining_budget, std::uint64_t fit_seed);

  /// Budget-viable untested configurations Γ, ascending (valid after
  /// begin_decision). The multi-constraint optimizer simulates all of
  /// them — §4.4 uses no root screening.
  [[nodiscard]] const std::vector<ConfigId>& viable() const noexcept {
    return viable_;
  }

  /// Root-model cost predictions (objective 0) for every configuration.
  [[nodiscard]] const std::vector<model::Prediction>& root_cost_predictions()
      const noexcept {
    return root_preds_.front();
  }

  /// Incumbent y* of the current decision.
  [[nodiscard]] double incumbent() const noexcept { return y_star_; }

  /// ExplorePaths with joint speculation, rooted at `root` (must be in Γ).
  /// Safe to call concurrently from up to `workers` threads between two
  /// begin_decision calls.
  [[nodiscard]] PathValue simulate(ConfigId root, std::uint64_t path_seed);

  [[nodiscard]] const RootCache::Stats& cache_stats() const noexcept {
    static const RootCache::Stats kNone{};
    return cache_ != nullptr ? cache_->stats() : kNone;
  }

  /// Number of constraints I (objectives are I+1).
  [[nodiscard]] std::size_t constraint_count() const noexcept {
    return options_.thresholds.size();
  }

 private:
  /// Per-depth, per-worker buffers of the recursion.
  struct Level {
    std::vector<std::uint32_t> cands;      ///< untested ids, ascending
    std::vector<model::Prediction> cost_preds;  ///< parallel to cands
    /// Per-constraint predictions, parallel to cands.
    std::vector<std::vector<model::Prediction>> metric_preds;
    std::vector<math::QuadraturePoint> nodes;  ///< (I+1)·K branch points
    std::vector<std::size_t> radix;        ///< mixed-radix combo index
    std::vector<double> combo_cost;        ///< kept combos: clamped costs
    std::vector<double> combo_weight;      ///< kept combos: renormalized w
    std::vector<double> combo_metric;      ///< kept combos: I metrics each
    std::vector<model::Prediction> x_pred;   ///< chosen candidate, I+1 preds
    /// Incremental mode only: this depth's I+1 models, assign_fitted()
    /// from the parent's and appended with the branch's fantasy sample
    /// per objective. Empty when incremental refit is off.
    std::vector<std::unique_ptr<model::Regressor>> inc_models;
  };

  /// begin_decision scratch: the I metric predictions of one root
  /// candidate, gathered contiguously for mc_eic.
  std::vector<model::Prediction> root_mpred_scratch_;

  /// One worker's exclusive delta-maintained path state Σ.
  struct Workspace {
    std::vector<std::unique_ptr<model::Regressor>> models;  ///< I+1
    std::vector<std::uint32_t> rows;
    std::vector<double> y_cost;
    std::vector<std::vector<double>> y_metric;  ///< [constraint][sample]
    std::vector<char> feasible;
    std::vector<Level> levels;
    std::vector<model::Prediction> root_x_pred;  ///< I+1 root preds of x
    std::uint64_t epoch = 0;
    /// Branch parallelism only (primary workspaces; see the
    /// pooled-determinism contract): per-combo contribution slots reduced
    /// in combo order, preallocated parallel_ranges control block. The
    /// replicas partitions run on live in the engine-wide shared pool.
    std::vector<PathValue> branch_value;
    std::vector<char> branch_taken;
    std::unique_ptr<util::ThreadPool::RangeSection> section;
  };

  /// Exact `prob_within(beta, pred) >= feasibility_quantile` via the
  /// precomputed cdf boundary (see LookaheadEngine::budget_viable).
  [[nodiscard]] bool budget_viable(double beta,
                                   const model::Prediction& pred) const
      noexcept {
    if (pred.stddev <= 0.0) return beta >= pred.mean;
    return (beta - pred.mean) / pred.stddev >= viable_z_;
  }

  /// EIc(x) with the product of all constraint-satisfaction probabilities,
  /// replicating reference::McSimulator::eic's operation order. The metric
  /// predictions are supplied by the caller (full-space at the root, lazy
  /// scalar predictions inside the scan).
  [[nodiscard]] double mc_eic(double y_star, ConfigId x,
                              const model::Prediction& cost_pred,
                              const model::Prediction* metric_preds) const;

  /// Builds the pruned, renormalized joint-speculation combos of `x_preds`
  /// into `lvl`'s flat buffers; returns the kept-combination count.
  std::size_t speculate(Level& lvl, const model::Prediction* x_preds) const;

  PathValue explore(Workspace& ws, std::size_t depth, ConfigId x,
                    const model::Prediction* x_preds, double x_eic,
                    double beta, const std::vector<std::uint32_t>& cands,
                    unsigned steps_left, std::uint64_t path_seed);

  /// One depth-`depth` joint-speculation combo (index i): pushes the
  /// fantasy sample on every objective of `ws`, refits/appends the I+1
  /// branch models, runs the fused multi-constraint NextStep scan and
  /// recurses into the chosen candidate. `shared` supplies the node's
  /// read-only inputs (pruned combo buffers, child candidate list); see
  /// LookaheadEngine::explore_branch for the serial/parallel aliasing.
  bool explore_branch(Workspace& ws, std::size_t depth, std::size_t i,
                      ConfigId x, double cap_x, double beta,
                      const Level& shared, unsigned steps_left,
                      std::uint64_t path_seed, PathValue& out);

  /// Re-seeds `ws`'s path state Σ from the decision's root snapshot (see
  /// LookaheadEngine::sync_workspace).
  void sync_workspace(Workspace& ws);

  Workspace* acquire_workspace();
  void release_workspace(Workspace* ws);

  /// Shared branch-replica pool (see
  /// LookaheadEngine::acquire_branch_workspace).
  Workspace* acquire_branch_workspace();
  void release_branch_workspace(Workspace* ws);

  const OptimizationProblem& problem_;
  const Options options_;
  const model::FeatureMatrix fm_;
  const math::GaussHermite quadrature_;

  RootCache* cache_ = nullptr;  ///< options_.root_cache; null = disabled

  /// Precomputed per-configuration feasibility cost caps and constraint
  /// thresholds (pure functions of the id).
  std::vector<double> caps_;
  std::vector<std::vector<double>> threshold_by_id_;  ///< [constraint][id]

  // Root-cache key scratch (rebuilt per decision, capacity reused).
  std::vector<const std::vector<double>*> key_targets_;
  std::vector<const std::vector<model::Prediction>*> key_preds_;
  std::vector<const model::Regressor*> key_models_;

  // Root snapshot of the current decision.
  std::vector<std::unique_ptr<model::Regressor>> root_models_;  ///< I+1
  std::vector<std::uint32_t> root_rows_;
  std::vector<double> root_y_cost_;
  std::vector<std::vector<double>> root_y_metric_;
  std::vector<char> root_feasible_;
  std::vector<std::uint32_t> root_cands_;  ///< untested ids, ascending
  std::vector<char> tested_;               ///< scratch for root_cands_
  std::vector<std::vector<model::Prediction>> root_preds_;  ///< [objective]
  std::vector<ConfigId> viable_;
  std::vector<double> eic_by_id_;
  double root_beta_ = 0.0;
  double y_star_ = 0.0;
  double viable_z_ = 0.0;
  std::uint64_t epoch_ = 0;
  /// Options::incremental_refit and the model actually supports it.
  bool incremental_ok_ = false;
  /// Static partitions of the depth-0 combo fan-out (1 = serial).
  std::size_t branch_parts_ = 1;

  std::vector<Workspace> workspaces_;
  std::mutex pool_mutex_;
  std::vector<Workspace*> free_workspaces_;

  std::vector<std::unique_ptr<Workspace>> branch_workspaces_;
  /// FIFO ring over branch_workspaces_ (see
  /// LookaheadEngine::acquire_branch_workspace).
  std::vector<Workspace*> free_branch_;
  std::size_t branch_head_ = 0;
  std::size_t branch_free_ = 0;
  std::mutex branch_mutex_;
  std::condition_variable branch_cv_;
};

}  // namespace lynceus::core

#pragma once

/// \file lookahead.hpp
/// The allocation-free, candidate-pruned lookahead simulation engine behind
/// Lynceus' long-sighted decisions (paper §4.3, Algorithm 2).
///
/// A decision simulates, for every screened budget-viable root x, an
/// exploration path of up to LA further steps; each step's speculated cost
/// is discretized into K Gauss–Hermite branches and each branch refits the
/// cost model with the fantasy sample. The naive implementation deep-copies
/// the optimizer state Σ and re-predicts the *entire* configuration space
/// at every branch, making a path node cost O(|space| · trees · depth) plus
/// O(|space|) of copying. This engine removes both:
///
///  * **Delta states.** Each worker owns a single path state (training
///    rows, targets, feasibility flags). Descending into a branch pushes
///    the fantasy sample; returning pops it. No per-branch copies, and no
///    per-config `tested` array at all — testedness is implied by the
///    candidate list.
///  * **Candidate pruning.** The ascending list of untested configurations
///    shrinks by exactly the path's own step as it descends, and the model
///    is only asked to predict that list (Regressor::predict_subset), so a
///    path node costs O(candidates) instead of O(|space|). The full-space
///    predict_all runs once per decision, at the root.
///  * **Fused acquisition.** One pass per node computes (P(c ≤ β), EIc)
///    per candidate and keeps the running argmax; the root pass stores the
///    EIc values the screening sort and stop-rule reuse, instead of
///    re-deriving prob_within/EI per consumer.
///
/// Complexity per simulated path node: one ensemble refit on |S|+depth
/// samples plus one O(candidates) batched prediction and one O(candidates)
/// fused scan — down from O(|space|) prediction and O(|space|) state
/// copying. After the first simulated path warms the buffers, simulate()
/// performs zero heap allocation under the default bagging model (asserted
/// by the test suite via util/alloc_count.hpp).
///
/// Determinism: the engine reproduces the naive reference trajectory
/// bit-for-bit — same derive_seed call structure, same candidate scan
/// order (ascending ids), same floating-point accumulation order in the
/// batched predictions (see Regressor's batched-prediction contract).

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/types.hpp"
#include "math/gauss_hermite.hpp"
#include "model/regressor.hpp"

namespace lynceus::core {

/// §4.4 "Setup costs": monetary cost of switching the deployed
/// configuration from `current` (nullopt = nothing deployed yet) to `next`.
using SetupCostFn =
    std::function<double(std::optional<ConfigId> current, ConfigId next)>;

/// Reward and cost of an exploration path (return of ExplorePaths).
struct PathValue {
  double reward = 0.0;
  double cost = 0.0;
};

class LookaheadEngine {
 public:
  struct Options {
    unsigned lookahead = 2;           ///< LA
    unsigned gh_points = 3;           ///< K branches per simulated step
    double gamma = 0.9;               ///< reward discount
    double feasibility_quantile = 0.99;  ///< Γ filter quantile
    SetupCostFn setup_cost;           ///< optional §4.4 extension
  };

  /// `workers` is the maximum number of concurrent simulate() calls; one
  /// model + path-state workspace is preallocated per worker. `problem`
  /// must outlive the engine.
  LookaheadEngine(const OptimizationProblem& problem, Options options,
                  const model::ModelFactory& factory, std::size_t workers);

  /// Starts a decision: snapshots the optimizer's samples into the root
  /// state Σ, refits the root model with `fit_seed`, runs the one
  /// full-space prediction of the decision, and the fused root acquisition
  /// pass (incumbent y*, viable set Γ in ascending id order, per-candidate
  /// EIc). Not thread-safe against concurrent simulate() calls.
  void begin_decision(const std::vector<Sample>& samples,
                      double remaining_budget, std::uint64_t fit_seed);

  /// Root-model predictions for every configuration (valid after
  /// begin_decision).
  [[nodiscard]] const std::vector<model::Prediction>& root_predictions()
      const noexcept {
    return root_preds_;
  }

  /// Incumbent y* of the current decision.
  [[nodiscard]] double incumbent() const noexcept { return y_star_; }

  /// Budget-viable untested configurations Γ, ascending.
  [[nodiscard]] const std::vector<ConfigId>& viable() const noexcept {
    return viable_;
  }

  /// max_{x ∈ Γ} EIc(x); 0 when Γ is empty (EIc is never negative).
  [[nodiscard]] double max_viable_eic() const noexcept {
    return max_viable_eic_;
  }

  /// Root EIc(x) from the fused pass. Only meaningful for x ∈ Γ.
  [[nodiscard]] double root_eic(ConfigId id) const { return eic_by_id_[id]; }

  /// Fills `out` with the roots to simulate: all of Γ, or when
  /// `width > 0` and Γ is larger, the `width` best by the one-step
  /// EIc/E[cost] score (implementation approximation, see DESIGN.md §5).
  void screened_roots(unsigned width, std::vector<ConfigId>& out) const;

  /// ExplorePaths (Algorithm 2) rooted at `root` (must be in Γ). Safe to
  /// call concurrently from up to `workers` threads between two
  /// begin_decision calls.
  [[nodiscard]] PathValue simulate(ConfigId root, std::uint64_t path_seed);

  [[nodiscard]] const model::FeatureMatrix& feature_matrix() const noexcept {
    return fm_;
  }

 private:
  /// Per-depth, per-worker buffers of the recursion.
  struct Level {
    std::vector<std::uint32_t> cands;       ///< untested ids, ascending
    std::vector<model::Prediction> preds;   ///< parallel to cands
    std::vector<math::QuadraturePoint> nodes;  ///< K branch points
  };

  /// One worker's exclusive state: a model instance plus the single
  /// delta-maintained path state Σ.
  struct Workspace {
    std::unique_ptr<model::Regressor> model;
    std::vector<std::uint32_t> rows;  ///< training rows (real + fantasy)
    std::vector<double> y;            ///< observed / speculated costs
    std::vector<char> feasible;       ///< per-sample feasibility
    std::vector<Level> levels;
    std::uint64_t epoch = 0;  ///< decision this path state mirrors
  };

  [[nodiscard]] double setup_cost(const std::optional<ConfigId>& from,
                                  ConfigId to) const {
    return options_.setup_cost ? options_.setup_cost(from, to) : 0.0;
  }

  /// Exactly `prob_within(beta, pred) >= feasibility_quantile`, without
  /// evaluating the normal cdf: `viable_z_` is the smallest double z with
  /// norm_cdf(z) >= q (found once by bisection), so comparing the z-score
  /// against it reproduces the cdf comparison decision bit-for-bit while
  /// replacing an erfc call per candidate with a subtract-divide-compare.
  [[nodiscard]] bool budget_viable(double beta,
                                   const model::Prediction& pred) const
      noexcept {
    if (pred.stddev <= 0.0) return beta >= pred.mean;
    return (beta - pred.mean) / pred.stddev >= viable_z_;
  }

  /// Incumbent for a simulated state: cheapest feasible sample, or the
  /// paper's fallback (max sampled cost + 3 · max predictive stddev over
  /// the untested candidates).
  [[nodiscard]] static double state_incumbent(
      const std::vector<double>& y, const std::vector<char>& feasible,
      const std::vector<model::Prediction>& cand_preds);

  PathValue explore(Workspace& ws, std::size_t depth, ConfigId x,
                    double x_mean, double x_stddev, double x_eic, double beta,
                    const std::optional<ConfigId>& chi,
                    const std::vector<std::uint32_t>& cands,
                    unsigned steps_left, std::uint64_t path_seed);

  Workspace* acquire_workspace();
  void release_workspace(Workspace* ws);

  const OptimizationProblem& problem_;
  const Options options_;
  const model::FeatureMatrix fm_;
  const math::GaussHermite quadrature_;

  // Root snapshot of the current decision.
  std::unique_ptr<model::Regressor> root_model_;
  std::vector<std::uint32_t> root_rows_;
  std::vector<double> root_y_;
  std::vector<char> root_feasible_;
  std::vector<std::uint32_t> root_cands_;  ///< untested ids, ascending
  std::vector<char> tested_;               ///< scratch for root_cands_
  std::vector<model::Prediction> root_preds_;
  std::vector<ConfigId> viable_;
  std::vector<double> eic_by_id_;
  double root_beta_ = 0.0;
  std::optional<ConfigId> root_chi_;
  double y_star_ = 0.0;
  double max_viable_eic_ = 0.0;
  double viable_z_ = 0.0;
  std::uint64_t epoch_ = 0;

  std::vector<Workspace> workspaces_;
  std::mutex pool_mutex_;
  std::vector<Workspace*> free_workspaces_;
};

}  // namespace lynceus::core

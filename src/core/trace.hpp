#pragma once

/// \file trace.hpp
/// Observability for the optimization loop: an observer interface invoked
/// at every phase of a Lynceus run (bootstrap samples, per-decision
/// internals, profiling outcomes, stop reason), plus a recorder that
/// collects everything for post-hoc inspection.
///
/// The per-decision event exposes the quantities Algorithm 1 computes —
/// the size of the budget-viable set Γ, the incumbent y*, the remaining
/// budget β, and the chosen root's predicted cost — which is exactly what
/// one needs to debug "why did it pick that configuration?" questions and
/// to validate budget-awareness empirically (tests do both).

#include <string>
#include <vector>

#include "core/types.hpp"

namespace lynceus::core {

struct DecisionEvent {
  std::size_t iteration = 0;       ///< 1-based post-bootstrap decision index
  std::size_t viable_count = 0;    ///< |Γ| before screening
  std::size_t simulated_roots = 0; ///< paths actually simulated
  ConfigId chosen = 0;
  double predicted_cost = 0.0;     ///< model mean cost of the chosen config
  double incumbent = 0.0;          ///< y* at decision time
  double remaining_budget = 0.0;   ///< β before the chosen run
  double best_ratio = 0.0;         ///< reward/cost of the winning path
};

class OptimizerObserver {
 public:
  virtual ~OptimizerObserver() = default;
  virtual void on_bootstrap(const Sample& sample) { (void)sample; }
  virtual void on_decision(const DecisionEvent& event) { (void)event; }
  virtual void on_run(const Sample& sample) { (void)sample; }
  /// A profiling attempt FAILED (RunOutcome::kFailed): no sample was
  /// produced, but the partial cost was billed. Fired from the same place
  /// on_run would have been for a successful run.
  virtual void on_failure(const FailureRecord& failure) { (void)failure; }
  virtual void on_stop(const std::string& reason) { (void)reason; }
};

/// Records every event; also derives per-decision prediction errors once
/// the corresponding run outcome arrives.
class TraceRecorder final : public OptimizerObserver {
 public:
  void on_bootstrap(const Sample& sample) override;
  void on_decision(const DecisionEvent& event) override;
  void on_run(const Sample& sample) override;
  void on_failure(const FailureRecord& failure) override;
  void on_stop(const std::string& reason) override;

  [[nodiscard]] const std::vector<Sample>& bootstrap_samples() const {
    return bootstrap_;
  }
  [[nodiscard]] const std::vector<DecisionEvent>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] const std::vector<Sample>& runs() const { return runs_; }
  [[nodiscard]] const std::vector<FailureRecord>& failures() const {
    return failures_;
  }
  [[nodiscard]] const std::string& stop_reason() const { return stop_reason_; }

  /// |predicted − actual| / actual per decision (empty until runs arrive).
  [[nodiscard]] std::vector<double> relative_prediction_errors() const;

 private:
  std::vector<Sample> bootstrap_;
  std::vector<DecisionEvent> decisions_;
  std::vector<Sample> runs_;
  std::vector<FailureRecord> failures_;
  std::string stop_reason_;
};

}  // namespace lynceus::core

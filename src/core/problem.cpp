#include <cmath>
#include <stdexcept>

#include "core/stepper.hpp"
#include "core/types.hpp"

namespace lynceus::core {

const char* to_string(RunOutcome outcome) noexcept {
  switch (outcome) {
    case RunOutcome::kOk:
      return "ok";
    case RunOutcome::kFailed:
      return "failed";
    case RunOutcome::kTimedOut:
      return "timed_out";
  }
  return "ok";
}

// Out-of-line so ~unique_ptr sees the complete OptimizerStepper type.
std::unique_ptr<OptimizerStepper> Optimizer::make_stepper(
    const OptimizationProblem& problem, std::uint64_t seed) const {
  (void)problem;
  (void)seed;
  return nullptr;
}

void OptimizationProblem::validate() const {
  if (!space) {
    throw std::invalid_argument("OptimizationProblem: null space");
  }
  if (unit_price_per_hour.size() != space->size()) {
    throw std::invalid_argument(
        "OptimizationProblem: need one unit price per configuration");
  }
  for (double u : unit_price_per_hour) {
    if (!(u > 0.0)) {
      throw std::invalid_argument(
          "OptimizationProblem: unit prices must be positive");
    }
  }
  if (!(tmax_seconds > 0.0)) {
    throw std::invalid_argument("OptimizationProblem: Tmax must be positive");
  }
  if (!(budget > 0.0)) {
    throw std::invalid_argument("OptimizationProblem: budget must be positive");
  }
  if (bootstrap_samples == 0 || bootstrap_samples > space->size()) {
    throw std::invalid_argument(
        "OptimizationProblem: bootstrap sample count out of range");
  }
  std::vector<char> seen(space->size(), 0);
  for (const auto& s : prior_samples) {
    if (s.id >= space->size()) {
      throw std::invalid_argument(
          "OptimizationProblem: prior sample outside the space");
    }
    if (seen[s.id] != 0) {
      throw std::invalid_argument(
          "OptimizationProblem: duplicate prior sample");
    }
    seen[s.id] = 1;
    if (!(s.cost >= 0.0)) {
      throw std::invalid_argument(
          "OptimizationProblem: prior sample with negative cost");
    }
  }
}

std::size_t default_bootstrap_samples(const space::ConfigSpace& space) {
  // Paper §5.2: N = max(⌈3% of |C|⌉, number of dimensions).
  const auto three_percent = static_cast<std::size_t>(
      std::ceil(0.03 * static_cast<double>(space.size())));
  return std::max(three_percent, space.dim_count());
}

}  // namespace lynceus::core

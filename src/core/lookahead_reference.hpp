#pragma once

/// \file lookahead_reference.hpp
/// The naive copy-based reference implementation of the single-constraint
/// Lynceus decision loop (paper §4.3, Algorithms 1 and 2) — the semantics
/// oracle for LookaheadEngine / LynceusOptimizer.
///
/// This is the faithful port of the pre-engine decision loop: per-branch
/// deep-copied states, full-space `predict_all` at every branch,
/// per-consumer `prob_within` scans. It is deliberately slow and
/// allocation-heavy; its only job is to pin the trajectory semantics
/// bit-for-bit. The golden-trajectory tests (tests/test_lookahead.cpp)
/// assert the production optimizer picks the identical configuration
/// sequence with `incremental_refit` off, and the differential suite
/// (tests/test_incremental_refit.cpp) measures trajectory-quality parity
/// against it with the flag on.
///
/// The multi-constraint twin lives in core/constraints_reference.hpp;
/// this header mirrors its structure (lives in src/ rather than tests/ so
/// bench and tool binaries can drive reference decisions too).

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "core/acquisition.hpp"
#include "core/bo.hpp"
#include "core/lynceus.hpp"
#include "core/sequential.hpp"
#include "math/gauss_hermite.hpp"
#include "util/rng.hpp"

namespace lynceus::core::reference {

/// Faithful port of the pre-engine Lynceus decision loop: per-branch
/// deep-copied states, full-space predictions, per-consumer prob_within
/// scans. Kept as the reference semantics for the lookahead engine: both
/// must pick the same configuration sequence for identical seeds (with
/// LynceusOptions::incremental_refit off; the reference has no
/// incremental path by construction).
class NaiveLynceus {
 public:
  explicit NaiveLynceus(LynceusOptions options) : opts_(std::move(options)) {}

  OptimizerResult optimize(const OptimizationProblem& problem,
                           JobRunner& runner, std::uint64_t seed) {
    LoopState st(problem, runner, seed);
    st.bootstrap();
    const model::FeatureMatrix fm(*problem.space);
    const math::GaussHermite quadrature(opts_.gh_points);
    const model::ModelFactory factory =
        opts_.model_factory ? opts_.model_factory
                            : default_tree_model_factory(*problem.space);
    auto root_model = factory();
    auto path_model = factory();

    std::uint64_t iteration = 0;
    while (!st.untested.empty()) {
      ++iteration;
      State root;
      for (const auto& s : st.samples) {
        root.rows.push_back(s.id);
        root.y.push_back(s.cost);
        root.feasible.push_back(s.feasible ? 1 : 0);
      }
      root.tested.assign(problem.space->size(), 0);
      for (const auto& s : st.samples) root.tested[s.id] = 1;
      root.beta = st.budget.remaining();
      root.chi = st.samples.empty()
                     ? std::nullopt
                     : std::optional<ConfigId>(st.samples.back().id);

      Ctx root_ctx;
      build_ctx(problem, fm, *root_model, root, root_ctx,
                util::derive_seed(seed, iteration));

      std::vector<ConfigId> viable;
      for (std::size_t id = 0; id < root_ctx.preds.size(); ++id) {
        if (root.tested[id] != 0) continue;
        if (prob_within(root.beta, root_ctx.preds[id]) >=
            opts_.feasibility_quantile) {
          viable.push_back(static_cast<ConfigId>(id));
        }
      }
      if (viable.empty()) break;

      std::vector<ConfigId> roots = viable;
      if (opts_.screen_width > 0 && roots.size() > opts_.screen_width) {
        std::partial_sort(
            roots.begin(), roots.begin() + opts_.screen_width, roots.end(),
            [&](ConfigId a, ConfigId b) {
              const double sa = eic(problem, root_ctx, a) /
                                std::max(root_ctx.preds[a].mean, 1e-12);
              const double sb = eic(problem, root_ctx, b) /
                                std::max(root_ctx.preds[b].mean, 1e-12);
              return sa > sb;
            });
        roots.resize(opts_.screen_width);
      }

      double best_ratio = -std::numeric_limits<double>::infinity();
      ConfigId best_id = roots.front();
      for (ConfigId x : roots) {
        const PathValue v = explore(
            problem, fm, quadrature, *path_model, root, root_ctx, x,
            opts_.lookahead,
            util::derive_seed(seed, iteration * 1000003ULL + x));
        const double ratio = v.reward / std::max(v.cost, 1e-12);
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_id = x;
        }
      }

      if (opts_.setup_cost) {
        st.budget.spend(std::max(0.0, opts_.setup_cost(root.chi, best_id)));
      }
      st.profile(best_id);
    }
    return st.finalize();
  }

 private:
  struct State {
    std::vector<std::uint32_t> rows;
    std::vector<double> y;
    std::vector<char> feasible;
    std::vector<char> tested;
    double beta = 0.0;
    std::optional<ConfigId> chi;
  };
  struct Ctx {
    std::vector<model::Prediction> preds;
    double y_star = 0.0;
  };

  [[nodiscard]] double eic(const OptimizationProblem& problem, const Ctx& ctx,
                           ConfigId x) const {
    return constrained_ei(ctx.y_star, ctx.preds[x],
                          problem.feasibility_cost_cap(x));
  }

  [[nodiscard]] double setup(const std::optional<ConfigId>& from,
                             ConfigId to) const {
    return opts_.setup_cost ? opts_.setup_cost(from, to) : 0.0;
  }

  void build_ctx(const OptimizationProblem& problem,
                 const model::FeatureMatrix& fm, model::Regressor& model,
                 const State& st, Ctx& ctx, std::uint64_t fit_seed) const {
    (void)problem;
    model.fit(fm, st.rows, st.y, fit_seed);
    model.predict_all(fm, ctx.preds);
    bool any = false;
    double best = 0.0;
    double most_expensive = st.y.front();
    for (std::size_t i = 0; i < st.y.size(); ++i) {
      most_expensive = std::max(most_expensive, st.y[i]);
      if (st.feasible[i] != 0 && (!any || st.y[i] < best)) {
        best = st.y[i];
        any = true;
      }
    }
    if (any) {
      ctx.y_star = best;
      return;
    }
    double max_stddev = 0.0;
    for (std::size_t id = 0; id < ctx.preds.size(); ++id) {
      if (st.tested[id] == 0) {
        max_stddev = std::max(max_stddev, ctx.preds[id].stddev);
      }
    }
    ctx.y_star = most_expensive + 3.0 * max_stddev;
  }

  [[nodiscard]] std::optional<ConfigId> next_step(
      const OptimizationProblem& problem, const State& st,
      const Ctx& ctx) const {
    double best = -std::numeric_limits<double>::infinity();
    std::optional<ConfigId> best_id;
    for (std::size_t id = 0; id < ctx.preds.size(); ++id) {
      if (st.tested[id] != 0) continue;
      if (prob_within(st.beta, ctx.preds[id]) < opts_.feasibility_quantile) {
        continue;
      }
      const double acq = eic(problem, ctx, static_cast<ConfigId>(id));
      if (acq > best) {
        best = acq;
        best_id = static_cast<ConfigId>(id);
      }
    }
    return best_id;
  }

  PathValue explore(const OptimizationProblem& problem,
                    const model::FeatureMatrix& fm,
                    const math::GaussHermite& quadrature,
                    model::Regressor& model, const State& st, const Ctx& ctx,
                    ConfigId x, unsigned l, std::uint64_t path_seed) const {
    const model::Prediction& pred = ctx.preds[x];
    PathValue v;
    v.reward = eic(problem, ctx, x);
    v.cost = pred.mean + setup(st.chi, x);
    if (l == 0) return v;

    const auto nodes = quadrature.for_normal(pred.mean, pred.stddev);
    const double cap = problem.feasibility_cost_cap(x);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const double ci = std::max(nodes[i].value, 0.001 * pred.mean);
      const double wi = nodes[i].weight;

      State child = st;  // the deep copy the engine's deltas replace
      child.rows.push_back(x);
      child.y.push_back(ci);
      child.feasible.push_back(ci <= cap ? 1 : 0);
      child.tested[x] = 1;
      child.beta = st.beta - ci - setup(st.chi, x);
      child.chi = x;

      Ctx child_ctx;
      build_ctx(problem, fm, model, child, child_ctx,
                util::derive_seed(path_seed, i + 1));
      const auto x_next = next_step(problem, child, child_ctx);
      if (!x_next) continue;

      const PathValue sub =
          explore(problem, fm, quadrature, model, child, child_ctx, *x_next,
                  l - 1, util::derive_seed(path_seed, 131 * (i + 1) + 7));
      v.cost += wi * sub.cost;
      v.reward += opts_.gamma * wi * sub.reward;
    }
    return v;
  }

  LynceusOptions opts_;
};

}  // namespace lynceus::core::reference

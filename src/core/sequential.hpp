#pragma once

/// \file sequential.hpp
/// Shared scaffolding for the sequential optimizers (RND, BO, Lynceus):
/// the LHS bootstrap phase (identical across optimizers so that paired
/// comparisons are fair — §5.2 "all optimizers use the same set of initial
/// configurations for their own i-th run"), run/update bookkeeping, and
/// final-recommendation selection.

#include "core/budget.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace lynceus::core {

/// Mutable state of one optimization run.
struct LoopState {
  const OptimizationProblem* problem = nullptr;
  JobRunner* runner = nullptr;
  Budget budget{0.0};
  util::Rng rng{0};
  std::vector<Sample> samples;
  std::vector<char> tested;          ///< per-config flag
  std::vector<ConfigId> untested;    ///< maintained list (unordered erase)

  explicit LoopState(const OptimizationProblem& prob, JobRunner& run,
                     std::uint64_t seed);

  /// Profiles `id`: runs the job, charges the budget, appends the sample
  /// (with its feasibility evaluated against Tmax) and removes `id` from
  /// the untested set. Returns the new sample.
  const Sample& profile(ConfigId id);

  /// Runs the N-sample LHS bootstrap (paper Algorithm 1, lines 6-8).
  void bootstrap();

  /// Builds the OptimizerResult: the recommendation is the cheapest
  /// feasible sample, falling back to the cheapest sample when none is
  /// feasible.
  [[nodiscard]] OptimizerResult finalize() const;
};

/// Accumulator for decision-time measurement (Table 3): wall-clock seconds
/// spent inside "choose the next configuration".
class DecisionTimer {
 public:
  void start();
  void stop();
  /// Abandons the interval opened by start() without recording it (used
  /// when the decision computation concludes "stop exploring" instead of
  /// choosing a configuration).
  void discard() noexcept { started_at_ = -1.0; }

  [[nodiscard]] double total_seconds() const noexcept { return total_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Copies the accumulated timing into a result.
  void write_to(OptimizerResult& result) const;

 private:
  double total_ = 0.0;
  std::size_t count_ = 0;
  double started_at_ = -1.0;
};

}  // namespace lynceus::core

#pragma once

/// \file sequential.hpp
/// Shared scaffolding for the sequential optimizers (RND, BO, Lynceus):
/// the LHS bootstrap phase (identical across optimizers so that paired
/// comparisons are fair — §5.2 "all optimizers use the same set of initial
/// configurations for their own i-th run"), run/update bookkeeping, and
/// final-recommendation selection.

#include "core/budget.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace lynceus::core {

/// Mutable state of one optimization run.
struct LoopState {
  const OptimizationProblem* problem = nullptr;
  JobRunner* runner = nullptr;  ///< null for ask/tell steppers (no profile())
  Budget budget{0.0};
  util::Rng rng{0};
  std::vector<Sample> samples;
  std::vector<FailureRecord> failures;  ///< failed attempts, in event order
  std::vector<char> tested;          ///< per-config flag
  std::vector<ConfigId> untested;    ///< maintained list (unordered erase)
  /// When true (the default), a configuration whose run FAILED
  /// (RunOutcome::kFailed) is removed from the untested set so the
  /// optimizer never proposes it again — the conservative policy for
  /// configurations that crash deterministically (e.g. OOM). When false,
  /// the config stays proposable and may be retried by a later decision.
  /// Retry-with-backoff of the SAME proposal is the service's job
  /// (service::RunPolicy), not the optimizer's.
  bool blacklist_failed = true;

  explicit LoopState(const OptimizationProblem& prob, JobRunner& run,
                     std::uint64_t seed);

  /// Runner-less state for the ask/tell steppers (core/stepper.hpp): run
  /// results arrive via record(); profile() throws.
  explicit LoopState(const OptimizationProblem& prob, std::uint64_t seed);

  /// Profiles `id`: runs the job, then record()s the result. Requires a
  /// runner. Returns the new sample.
  const Sample& profile(ConfigId id);

  /// Applies an externally produced run result for `id`: charges the
  /// budget, appends the sample (with its feasibility evaluated against
  /// Tmax) and removes `id` from the untested set. Exactly the state
  /// transition of profile() minus the JobRunner call — the ask/tell
  /// steppers feed tell()ed results through here, so driving a stepper
  /// with a runner reproduces profile()-based loops bit-for-bit.
  /// Requires an ok or timed-out result; a kFailed result is a logic error
  /// here (route it through record_failure()). A timed-out result is
  /// recorded as a censored observation: the sample is kept (runtime = the
  /// cap, a lower bound on the true runtime) but can never be feasible.
  const Sample& record(ConfigId id, const RunResult& r);

  /// Applies a FAILED run (RunOutcome::kFailed) for `id`: bills the
  /// attempt's partial cost via Budget::spend_failed, appends a
  /// FailureRecord (no sample — there is no runtime observation), and,
  /// when `blacklist_failed` is set, removes `id` from the untested set so
  /// it is never proposed again.
  const FailureRecord& record_failure(ConfigId id, const RunResult& r);

  /// Snapshot restore counterpart of record_failure(): re-applies a saved
  /// failure verbatim with no budget charge. Must be interleaved with
  /// restore_sample() in original event order (FailureRecord::after_samples)
  /// so the untested-list permutation is rebuilt exactly.
  void restore_failure(const FailureRecord& f);

  /// Runs the N-sample LHS bootstrap (paper Algorithm 1, lines 6-8).
  void bootstrap();

  /// The bootstrap's profiling plan: applies any warm-start prior samples
  /// (which replace the LHS phase entirely) and returns the LHS
  /// configuration ids still to be profiled, in profiling order — empty
  /// when priors were applied. Draws from `rng` exactly as bootstrap()
  /// does; bootstrap() itself is plan + profile() per id.
  [[nodiscard]] std::vector<ConfigId> bootstrap_plan();

  /// Snapshot restore (see core/stepper.hpp): re-appends a previously
  /// recorded sample verbatim — feasibility flag included, no budget
  /// charge (the accumulated spend is restored separately via
  /// Budget::set_spent). Replaying the saved samples in order rebuilds
  /// `tested` and the exact `untested` ordering (its unordered-erase
  /// permutation is a pure function of the removal sequence).
  void restore_sample(const Sample& s);

  /// Builds the OptimizerResult: the recommendation is the cheapest
  /// feasible sample, falling back to the cheapest sample when none is
  /// feasible.
  [[nodiscard]] OptimizerResult finalize() const;

 private:
  /// Marks `id` tested and removes it from the untested list.
  void mark_tested(ConfigId id);
};

/// Accumulator for decision-time measurement (Table 3): wall-clock seconds
/// spent inside "choose the next configuration".
class DecisionTimer {
 public:
  void start();
  void stop();
  /// Abandons the interval opened by start() without recording it (used
  /// when the decision computation concludes "stop exploring" instead of
  /// choosing a configuration).
  void discard() noexcept { started_at_ = -1.0; }

  [[nodiscard]] double total_seconds() const noexcept { return total_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Copies the accumulated timing into a result.
  void write_to(OptimizerResult& result) const;

  /// Snapshot restore: reinstates accumulated totals. No interval may be
  /// open (snapshots are only taken between decisions).
  void restore(double total_seconds, std::size_t count);

 private:
  double total_ = 0.0;
  std::size_t count_ = 0;
  double started_at_ = -1.0;
};

}  // namespace lynceus::core

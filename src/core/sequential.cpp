#include "core/sequential.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

namespace lynceus::core {

LoopState::LoopState(const OptimizationProblem& prob, JobRunner& run,
                     std::uint64_t seed)
    : problem(&prob), runner(&run), budget(prob.budget), rng(seed) {
  prob.validate();
  tested.assign(prob.space->size(), 0);
  untested = prob.space->all();
}

const Sample& LoopState::profile(ConfigId id) {
  if (tested.at(id) != 0) {
    throw std::logic_error("LoopState::profile: configuration already tested");
  }
  const RunResult r = runner->run(id);
  budget.spend(r.cost);

  Sample s;
  s.id = id;
  s.runtime_seconds = r.runtime_seconds;
  s.cost = r.cost;
  s.feasible = !r.timed_out && r.runtime_seconds <= problem->tmax_seconds;
  samples.push_back(s);

  tested[id] = 1;
  const auto it = std::find(untested.begin(), untested.end(), id);
  if (it != untested.end()) {
    *it = untested.back();
    untested.pop_back();
  }
  return samples.back();
}

void LoopState::bootstrap() {
  // Warm start (recurrent jobs, §2.1-III): measurements from a previous
  // tuning round seed the model without charging this round's budget and
  // replace the cold-start LHS phase.
  if (!problem->prior_samples.empty()) {
    for (const Sample& prior : problem->prior_samples) {
      if (tested.at(prior.id) != 0) {
        throw std::logic_error("LoopState::bootstrap: duplicate prior sample");
      }
      Sample s = prior;
      // Feasibility is re-judged against *this* round's deadline.
      s.feasible = s.feasible && s.runtime_seconds <= problem->tmax_seconds;
      samples.push_back(s);
      tested[s.id] = 1;
      const auto it = std::find(untested.begin(), untested.end(), s.id);
      if (it != untested.end()) {
        *it = untested.back();
        untested.pop_back();
      }
    }
    return;
  }
  const auto ids = problem->space->lhs_sample(problem->bootstrap_samples, rng);
  for (ConfigId id : ids) profile(id);
}

OptimizerResult LoopState::finalize() const {
  OptimizerResult out;
  out.history = samples;
  out.budget_spent = budget.spent();

  double best_feasible = std::numeric_limits<double>::infinity();
  double best_any = std::numeric_limits<double>::infinity();
  std::optional<ConfigId> feasible_id;
  std::optional<ConfigId> any_id;
  for (const auto& s : samples) {
    if (s.cost < best_any) {
      best_any = s.cost;
      any_id = s.id;
    }
    if (s.feasible && s.cost < best_feasible) {
      best_feasible = s.cost;
      feasible_id = s.id;
    }
  }
  if (feasible_id) {
    out.recommendation = feasible_id;
    out.recommendation_feasible = true;
  } else {
    out.recommendation = any_id;
    out.recommendation_feasible = false;
  }
  return out;
}

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void DecisionTimer::start() { started_at_ = now_seconds(); }

void DecisionTimer::stop() {
  if (started_at_ < 0.0) {
    throw std::logic_error("DecisionTimer::stop without start");
  }
  total_ += now_seconds() - started_at_;
  count_ += 1;
  started_at_ = -1.0;
}

void DecisionTimer::write_to(OptimizerResult& result) const {
  result.decision_seconds = total_;
  result.decisions = count_;
}

}  // namespace lynceus::core

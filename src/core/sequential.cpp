#include "core/sequential.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

namespace lynceus::core {

LoopState::LoopState(const OptimizationProblem& prob, JobRunner& run,
                     std::uint64_t seed)
    : problem(&prob), runner(&run), budget(prob.budget), rng(seed) {
  prob.validate();
  tested.assign(prob.space->size(), 0);
  untested = prob.space->all();
}

LoopState::LoopState(const OptimizationProblem& prob, std::uint64_t seed)
    : problem(&prob), runner(nullptr), budget(prob.budget), rng(seed) {
  prob.validate();
  tested.assign(prob.space->size(), 0);
  untested = prob.space->all();
}

void LoopState::mark_tested(ConfigId id) {
  tested[id] = 1;
  const auto it = std::find(untested.begin(), untested.end(), id);
  if (it != untested.end()) {
    *it = untested.back();
    untested.pop_back();
  }
}

const Sample& LoopState::profile(ConfigId id) {
  if (runner == nullptr) {
    throw std::logic_error("LoopState::profile: no runner (ask/tell state)");
  }
  if (tested.at(id) != 0) {
    throw std::logic_error("LoopState::profile: configuration already tested");
  }
  const RunResult r = runner->run(id);
  if (r.failed()) {
    record_failure(id, r);
    // Failures yield no sample; keep profile()'s reference contract by
    // pointing at the most recent sample (callers under fault injection go
    // through the stepper path, which dispatches before calling record()).
    if (samples.empty()) {
      throw std::runtime_error(
          "LoopState::profile: first run failed before any sample existed");
    }
    return samples.back();
  }
  return record(id, r);
}

const Sample& LoopState::record(ConfigId id, const RunResult& r) {
  if (r.failed()) {
    throw std::logic_error(
        "LoopState::record: kFailed result (use record_failure)");
  }
  if (tested.at(id) != 0) {
    throw std::logic_error("LoopState::record: configuration already tested");
  }
  budget.spend(r.cost);

  Sample s;
  s.id = id;
  s.runtime_seconds = r.runtime_seconds;
  s.cost = r.cost;
  s.feasible = !r.censored() && r.runtime_seconds <= problem->tmax_seconds;
  samples.push_back(s);

  mark_tested(id);
  return samples.back();
}

const FailureRecord& LoopState::record_failure(ConfigId id, const RunResult& r) {
  if (!r.failed()) {
    throw std::logic_error(
        "LoopState::record_failure: result did not fail (use record)");
  }
  if (tested.at(id) != 0) {
    throw std::logic_error(
        "LoopState::record_failure: configuration already tested");
  }
  budget.spend_failed(r.cost);

  FailureRecord f;
  f.id = id;
  f.cost = r.cost;
  f.after_samples = samples.size();
  failures.push_back(f);

  if (blacklist_failed) {
    mark_tested(id);
  }
  return failures.back();
}

void LoopState::restore_failure(const FailureRecord& f) {
  if (tested.at(f.id) != 0) {
    throw std::logic_error("LoopState::restore_failure: config already tested");
  }
  failures.push_back(f);
  if (blacklist_failed) {
    mark_tested(f.id);
  }
}

void LoopState::bootstrap() {
  for (ConfigId id : bootstrap_plan()) profile(id);
}

std::vector<ConfigId> LoopState::bootstrap_plan() {
  // Warm start (recurrent jobs, §2.1-III): measurements from a previous
  // tuning round seed the model without charging this round's budget and
  // replace the cold-start LHS phase.
  if (!problem->prior_samples.empty()) {
    for (const Sample& prior : problem->prior_samples) {
      if (tested.at(prior.id) != 0) {
        throw std::logic_error("LoopState::bootstrap: duplicate prior sample");
      }
      Sample s = prior;
      // Feasibility is re-judged against *this* round's deadline.
      s.feasible = s.feasible && s.runtime_seconds <= problem->tmax_seconds;
      samples.push_back(s);
      mark_tested(s.id);
    }
    return {};
  }
  return problem->space->lhs_sample(problem->bootstrap_samples, rng);
}

void LoopState::restore_sample(const Sample& s) {
  if (tested.at(s.id) != 0) {
    throw std::logic_error("LoopState::restore_sample: duplicate sample");
  }
  samples.push_back(s);
  mark_tested(s.id);
}

OptimizerResult LoopState::finalize() const {
  OptimizerResult out;
  out.history = samples;
  out.failures = failures;
  out.budget_spent = budget.spent();
  out.budget_spent_on_failures = budget.failed_spent();

  double best_feasible = std::numeric_limits<double>::infinity();
  double best_any = std::numeric_limits<double>::infinity();
  std::optional<ConfigId> feasible_id;
  std::optional<ConfigId> any_id;
  for (const auto& s : samples) {
    if (s.cost < best_any) {
      best_any = s.cost;
      any_id = s.id;
    }
    if (s.feasible && s.cost < best_feasible) {
      best_feasible = s.cost;
      feasible_id = s.id;
    }
  }
  if (feasible_id) {
    out.recommendation = feasible_id;
    out.recommendation_feasible = true;
  } else {
    out.recommendation = any_id;
    out.recommendation_feasible = false;
  }
  return out;
}

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void DecisionTimer::start() { started_at_ = now_seconds(); }

void DecisionTimer::stop() {
  if (started_at_ < 0.0) {
    throw std::logic_error("DecisionTimer::stop without start");
  }
  total_ += now_seconds() - started_at_;
  count_ += 1;
  started_at_ = -1.0;
}

void DecisionTimer::write_to(OptimizerResult& result) const {
  result.decision_seconds = total_;
  result.decisions = count_;
}

void DecisionTimer::restore(double total_seconds, std::size_t count) {
  if (started_at_ >= 0.0) {
    throw std::logic_error("DecisionTimer::restore with an open interval");
  }
  total_ = total_seconds;
  count_ = count;
}

}  // namespace lynceus::core

#include "core/acquisition.hpp"

#include <algorithm>
#include <stdexcept>

#include "math/distributions.hpp"

namespace lynceus::core {

double expected_improvement(double y_star, const model::Prediction& pred) {
  if (pred.stddev <= 0.0) return std::max(y_star - pred.mean, 0.0);
  const double z = (y_star - pred.mean) / pred.stddev;
  const double ei = (y_star - pred.mean) * math::norm_cdf(z) +
                    pred.stddev * math::norm_pdf(z);
  return std::max(ei, 0.0);
}

double prob_within(double cap, const model::Prediction& pred) {
  return math::normal_cdf(cap, pred.mean, pred.stddev);
}

double constrained_ei(double y_star, const model::Prediction& pred,
                      double feasibility_cap) {
  const double ei = expected_improvement(y_star, pred);
  if (ei <= 0.0) return 0.0;
  return ei * prob_within(feasibility_cap, pred);
}

double incumbent_cost(const std::vector<Sample>& samples,
                      const std::vector<model::Prediction>& predictions,
                      const std::vector<ConfigId>& untested) {
  if (samples.empty()) {
    throw std::invalid_argument("incumbent_cost: no samples");
  }
  bool any_feasible = false;
  double best = 0.0;
  double most_expensive = samples.front().cost;
  for (const auto& s : samples) {
    most_expensive = std::max(most_expensive, s.cost);
    if (s.feasible && (!any_feasible || s.cost < best)) {
      best = s.cost;
      any_feasible = true;
    }
  }
  if (any_feasible) return best;

  // Paper §3: "y* is estimated as the cost of the most expensive
  // configuration in S plus three times the maximum standard deviation
  // over the predictions on the points not in S".
  double max_stddev = 0.0;
  for (ConfigId id : untested) {
    max_stddev = std::max(max_stddev, predictions.at(id).stddev);
  }
  return most_expensive + 3.0 * max_stddev;
}

}  // namespace lynceus::core

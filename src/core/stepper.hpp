#pragma once

/// \file stepper.hpp
/// The inverted (ask/tell) form of the optimizer loop, and the machinery
/// every optimizer's suspend/resume state machine shares.
///
/// The paper's Algorithm 1 is a closed propose–profile–update loop: every
/// `Optimizer::optimize(problem, runner, seed)` in this repo used to block
/// inside that loop until the budget ran out. Real profiling runs take
/// minutes and complete asynchronously across many concurrently tuned jobs
/// (the ROADMAP's production-service north star; Tuneful and the Tencent
/// Spark tuner are built as ask/tell services for the same reason), so the
/// loop is inverted here:
///
///   * `ask()` computes the optimizer's next move *without touching a
///     JobRunner*: a batch of configurations to profile (the LHS bootstrap
///     batch first, then one configuration per decision), or a stop
///     reason. ask() is idempotent — it returns the same pending action
///     until the outstanding runs are resolved.
///   * `tell(config, result)` hands back one completed run. Results for a
///     batch may arrive in ANY order (the caller launches them
///     concurrently); the stepper buffers them and applies the whole batch
///     in the canonical ask() order once the last one lands, so the
///     optimizer state — and hence the trajectory — is independent of
///     completion order.
///   * `drive()` is the thin loop reconstructing the classic blocking
///     entrypoint; each optimizer's optimize() is exactly
///     `drive(*make_stepper(problem, seed), runner)`.
///
/// ## State machine
///
///   Bootstrap --ask--> Profile{LHS batch}   --all told--> Decide
///       (warm-start priors skip straight to Decide)
///   Decide    --ask--> Profile{one config}  --told-->      Decide
///   Decide    --ask--> Finished{stop reason}               (terminal)
///
/// ask() performs the decision work (model refit, Γ filter, path
/// simulation) and the observer's on_decision/on_stop callbacks; tell()
/// performs the state update (budget charge, sample append, setup-cost
/// spend) and on_run. A Finished action is terminal and idempotent.
///
/// ## Determinism contract
///
/// Driving a stepper with a deterministic runner reproduces the classic
/// optimize() trajectory **bit-for-bit** — same sample ids in the same
/// order, same costs, same budget arithmetic (identical floating-point
/// operation order), same recommendation, same decision count — for all
/// four optimizers, with the root cache, incremental refit and branch
/// parallelism on or off. Out-of-order tell()s cannot perturb this: batch
/// results are applied in ask() order regardless of arrival order, and a
/// decision is only ever computed when no run is outstanding. The
/// trajectory-identity suite (tests/test_stepper.cpp) and the CI
/// `trajectory_dump --via-steps` diff enforce the contract.
///
/// ## Snapshot format
///
/// snapshot() serializes the complete resumable state as one JSON object
/// (util/json; doubles via JsonWriter::value_exact, so write→parse is
/// bit-exact):
///
///   {
///     "format": "lynceus-session", "version": 1,
///     "optimizer": <name()>,            // restore() refuses a mismatch
///     "space_rows": N,                  // config-space size sanity check
///     "phase": "bootstrap" | "decide" | "finished",
///     "rng": {"s0".."s3", "spare", "has_spare"},   // xoshiro256** state
///     "budget_spent": <exact double>,
///     "budget_failed": <exact double>,  // only when failures occurred
///     "samples": [{"id", "runtime", "cost", "feasible"}, ...],
///     "failures": [{"id", "cost", "seq"}, ...],  // only when non-empty;
///                                       // seq = FailureRecord::after_samples
///     "pending": [config, ...],         // outstanding ask() batch
///     "told": [null | {"runtime", "cost", "timed_out", "outcome",
///                      "metrics"}, ...],  // "outcome" only when != ok
///     "stop_reason": <string>,          // finished only
///     "decisions": N, "decision_seconds": <double>,
///     "extra": { ... }                  // optimizer-specific (iteration
///   }                                   // counter, metrics, model state)
///
/// Failure-aware additions ("budget_failed", "failures", "outcome") are
/// emitted only when a fault actually occurred, so fault-free snapshots are
/// byte-identical to the pre-failure-aware format and version 1 snapshots
/// from either era restore interchangeably (absent keys default to the
/// fault-free reading). Restore interleaves the saved failures with the
/// samples by their `seq` key, replaying the exact event order — which is
/// what makes the untested-list permutation (and hence the resumed
/// trajectory) byte-identical under fault injection too.
///
/// restore() rebuilds a *freshly constructed* stepper (same problem,
/// options and seed — none of those are serialized) to the saved state:
/// samples are replayed in order (which reconstructs the exact
/// untested-list permutation), the RNG stream continues bit-identically,
/// and buffered partial batches are reinstated. A restored session
/// finishes **byte-identically** to the uninterrupted run. Model fit
/// state does not need to be part of the snapshot for that guarantee —
/// every decision refits from (samples, derived seed) deterministically —
/// but steppers that own a persistently fitted model (BO) embed it via
/// Regressor::save_fit so the restored process matches the saved one
/// in memory, not just in trajectory.
///
/// Observers are runtime wiring, not state: a restored stepper fires
/// events from the resume point onward only.

#include <optional>
#include <string>
#include <vector>

#include "core/sequential.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "util/json.hpp"

namespace lynceus::core {

/// What the driver must do next (returned by OptimizerStepper::ask()).
struct StepAction {
  enum class Kind {
    /// Profile every configuration in `configs` (any order, concurrently
    /// if desired) and tell() each result back.
    Profile,
    /// The run is over; `stop_reason` says why. Terminal.
    Finished,
  };

  Kind kind = Kind::Finished;
  std::vector<ConfigId> configs;
  std::string stop_reason;
};

/// Base of the four optimizer state machines (file comment above). The
/// base owns the phase logic, the canonical-order result application, the
/// observer plumbing and the snapshot scaffolding; subclasses implement
/// decide() plus optional apply/save hooks. The problem passed at
/// construction must outlive the stepper.
class OptimizerStepper {
 public:
  virtual ~OptimizerStepper() = default;

  OptimizerStepper(const OptimizerStepper&) = delete;
  OptimizerStepper& operator=(const OptimizerStepper&) = delete;

  /// The pending action. Computes the next decision when no run is
  /// outstanding; otherwise returns the current batch unchanged. The
  /// reference stays valid until the next tell()/restore() call.
  [[nodiscard]] const StepAction& ask();

  /// Supplies the result of one outstanding run. `config` must be an
  /// untold member of the current Profile batch (std::invalid_argument
  /// otherwise; std::logic_error when nothing is outstanding).
  ///
  /// Non-ok results are first-class: a kFailed result records a
  /// FailureRecord (partial cost billed, config blacklisted when the
  /// optimizer's `blacklist_failed` option is set — no sample); a
  /// kTimedOut result records a censored sample at the cap (never
  /// feasible). If every bootstrap run fails, the stepper finishes with
  /// stop_reason "no_successful_runs" instead of attempting a decision on
  /// an empty training set.
  void tell(ConfigId config, const RunResult& result);

  /// Forcibly finishes the run with the given stop reason (e.g. the tuning
  /// service quarantining a session whose runner keeps failing). Any
  /// outstanding batch is discarded; late tell()s then throw like on any
  /// finished stepper. Idempotent once finished.
  void abort(const std::string& reason);

  /// True once ask() has reported Finished.
  [[nodiscard]] bool finished() const noexcept {
    return phase_ == Phase::Finished;
  }

  /// Number of asked-but-untold runs.
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return action_ready_ && action_.kind == StepAction::Kind::Profile
               ? action_.configs.size() - told_count_
               : 0;
  }

  /// The untold members of the current Profile batch in canonical order
  /// (empty when nothing is outstanding). After a restore() of a snapshot
  /// taken mid-batch this is the set still to be (re-)launched — results
  /// already told are carried inside the snapshot.
  [[nodiscard]] std::vector<ConfigId> outstanding_configs() const;

  /// The Finished action's reason; empty while running.
  [[nodiscard]] const std::string& stop_reason() const noexcept {
    return action_.kind == StepAction::Kind::Finished ? action_.stop_reason
                                                      : empty_;
  }

  /// The result so far (identical to the classic optimize() return once
  /// finished(); a partial trajectory before that).
  [[nodiscard]] OptimizerResult result() const;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const OptimizationProblem& problem() const noexcept {
    return *st_.problem;
  }

  /// Serializes the resumable state (see the snapshot format above).
  [[nodiscard]] std::string snapshot() const;

  /// Restores a snapshot into this freshly constructed stepper (no ask()
  /// or tell() may have happened yet). The stepper must have been built
  /// with the same problem, options and seed as the saved one; the
  /// optimizer name and space size are verified, the rest is the caller's
  /// contract. Throws std::runtime_error on malformed input or a
  /// mismatched stepper, std::logic_error when this stepper already ran.
  void restore(const std::string& snapshot_json);

 protected:
  OptimizerStepper(const OptimizationProblem& problem, std::uint64_t seed,
                   OptimizerObserver* observer);

  /// Decision hook, called by ask() with the bootstrap applied and no run
  /// outstanding: returns the configuration to profile next, or sets
  /// `stop_reason` and returns nullopt to finish. Implementations manage
  /// timer_ themselves (start/stop around the decision computation,
  /// discard on a stop) and fire their own on_decision events.
  virtual std::optional<ConfigId> decide(std::string& stop_reason) = 0;

  /// Applies one bootstrap run in canonical order. Default:
  /// LoopState::record.
  virtual void apply_bootstrap_run(ConfigId config, const RunResult& r);

  /// Applies one decision run. Default: LoopState::record + on_run.
  virtual void apply_decision_run(ConfigId config, const RunResult& r);

  /// Applies one FAILED run (bootstrap or decision — failures carry no
  /// phase-specific state). Default: LoopState::record_failure +
  /// on_failure. Note Lynceus intentionally does NOT override this: the
  /// per-run setup cost is charged only for runs that actually set up and
  /// produced a measurement; a failed attempt bills exactly its reported
  /// partial cost.
  virtual void apply_failed_run(ConfigId config, const RunResult& r);

  /// Optimizer-specific snapshot members, written into / read from the
  /// snapshot's "extra" object.
  virtual void save_extra(util::JsonWriter& w) const;
  virtual void load_extra(const util::JsonValue& extra);

  LoopState st_;
  DecisionTimer timer_;
  OptimizerObserver* observer_ = nullptr;

 private:
  enum class Phase { Bootstrap, Decide, Finished };

  /// Fires on_bootstrap for every sample once the bootstrap is in place.
  void finish_bootstrap();
  void compute_next();
  /// Transitions to Finished with `stop_reason`, discarding any
  /// outstanding batch, and fires on_stop.
  void finish(const std::string& stop_reason);

  Phase phase_ = Phase::Bootstrap;
  StepAction action_;
  bool action_ready_ = false;  ///< action_ reflects the current state
  std::vector<std::optional<RunResult>> told_;  ///< parallel to configs
  std::size_t told_count_ = 0;
  bool started_ = false;  ///< any ask()/tell() yet (restore() guard)
  static const std::string empty_;
};

/// The classic blocking loop over a stepper: profile what ask() requests,
/// tell the results back, return the final result. With a deterministic
/// runner this reproduces the corresponding optimize() bit-for-bit.
[[nodiscard]] OptimizerResult drive(OptimizerStepper& stepper,
                                    JobRunner& runner);

}  // namespace lynceus::core

#pragma once

/// \file constraints.hpp
/// The paper's §4.4 "Multiple constraints" extension: in addition to the
/// deadline T(x) <= Tmax, the job must satisfy I further constraints of the
/// form "metric m_i <= t_i" (e.g. energy, p99 latency, error rate).
///
/// Following §4.4:
///  * one regression model is trained per constraint metric (the deadline
///    keeps using the cost model through C(x) = T(x)·U(x));
///  * EIc(x) becomes EI(x) · P(C(x) <= Tmax·U(x)) · Π_i P(m_i(x) <= t_i),
///    assuming independent constraint variables;
///  * path simulation speculates jointly on the cost and on every
///    constraint metric: the Cartesian product of the per-variable
///    Gauss–Hermite discretizations yields K^(I+1) weighted combinations
///    per step, pruned of combinations with negligible weight (the paper
///    points to numerical pruning methods [31, 38]).
///
/// The combinatorial growth makes deep lookahead expensive; the default
/// lookahead here is 1 (the ablation in bench_ablation shows the marginal
/// return of deeper lookahead on small spaces, mirroring §6.2).

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/lynceus.hpp"
#include "core/types.hpp"
#include "model/regressor.hpp"
#include "util/thread_pool.hpp"

namespace lynceus::core {

/// One auxiliary constraint "metric <= threshold(x)". `metric_index`
/// selects the entry of RunResult::metrics holding the measured value.
/// The threshold function must be pure (the same `x` always yields the
/// same value): the engine precomputes thresholds once per space.
struct ConstraintDef {
  std::string name;
  std::size_t metric_index = 0;
  /// Per-configuration threshold t_i (constant thresholds simply ignore x).
  std::function<double(ConfigId)> threshold;
};

/// JobRunner decorator recording the auxiliary metrics of every run.
/// LoopState keeps only runtime/cost; the multi-constraint optimizers need
/// the measured metric values to train the per-constraint models and to
/// judge sample feasibility. Throws if the inner runner reports fewer
/// metrics than `expected`.
class MetricRecordingRunner final : public JobRunner {
 public:
  MetricRecordingRunner(JobRunner& inner, std::size_t expected)
      : inner_(&inner), expected_(expected) {}

  RunResult run(ConfigId id) override {
    RunResult r = inner_->run(id);
    if (r.metrics.size() < expected_) {
      throw std::runtime_error(
          "MetricRecordingRunner: runner returned too few metrics");
    }
    metrics_.push_back(r.metrics);
    return r;
  }

  /// Per-run metric vectors, in run order.
  [[nodiscard]] const std::vector<std::vector<double>>& metrics() const {
    return metrics_;
  }

 private:
  JobRunner* inner_;
  std::size_t expected_;
  std::vector<std::vector<double>> metrics_;
};

struct MultiConstraintOptions {
  unsigned lookahead = 1;
  unsigned gh_points = 3;
  double gamma = 0.9;
  double feasibility_quantile = 0.99;
  /// Joint-speculation combinations whose weight falls below this value
  /// are pruned (weights are renormalized afterwards).
  double prune_weight = 1e-3;
  model::ModelFactory model_factory;
  /// Optional parallelism across root candidates (root paths are
  /// independent, exactly as in §4.3). Null = single-threaded.
  util::ThreadPool* pool = nullptr;
  /// Also parallelize *inside* each root simulation: the depth-0 pruned
  /// joint-speculation combo scan is statically partitioned across `pool`
  /// with per-worker workspace replicas and a fixed reduction order —
  /// trajectories stay byte-identical to serial runs (pooled-determinism
  /// contract in core/lookahead.hpp). No effect when `pool` is null or
  /// worker-less. Defaults to the LYNCEUS_BRANCH_PARALLEL environment
  /// toggle, mirroring LynceusOptions::branch_parallel.
  bool branch_parallel = util::env_flag("LYNCEUS_BRANCH_PARALLEL");
  /// Optional root cache shared across optimize() runs (see RootCache in
  /// core/lookahead.hpp); null disables caching. Not owned.
  RootCache* root_cache = nullptr;
  /// Opt-in incremental refit of the I+1 per-branch ensembles (see the
  /// "Incremental-refit determinism contract" in core/lookahead.hpp).
  /// Defaults to the LYNCEUS_INCREMENTAL_REFIT environment toggle (false
  /// when unset), mirroring LynceusOptions::incremental_refit.
  bool incremental_refit = util::env_flag("LYNCEUS_INCREMENTAL_REFIT");
  /// Blacklist configurations whose profiling run FAILED from future
  /// proposals (see LoopState::blacklist_failed), mirroring
  /// LynceusOptions::blacklist_failed. Failed runs record no constraint
  /// metrics — the per-sample metric table stays aligned with the sample
  /// history. Irrelevant for fault-free runs.
  bool blacklist_failed = true;
  /// Optional observer (see core/trace.hpp), mirroring
  /// LynceusOptions::observer: bootstrap samples, per-decision events
  /// (`viable_count`/`simulated_roots` = |Γ|, §4.4 simulates every viable
  /// root), run outcomes with the auxiliary-constraint feasibility already
  /// folded in, and the stop reason. Not owned. Purely observational —
  /// trajectories are unchanged whether an observer is attached or not.
  OptimizerObserver* observer = nullptr;

  void validate() const;
};

class MultiConstraintLynceus final : public Optimizer {
 public:
  MultiConstraintLynceus(std::vector<ConstraintDef> constraints,
                         MultiConstraintOptions options = {});

  /// The runner must fill RunResult::metrics with every constrained metric.
  /// Thin drive loop over make_stepper() — bit-identical to the classic
  /// closed-loop implementation (see core/stepper.hpp).
  [[nodiscard]] OptimizerResult optimize(const OptimizationProblem& problem,
                                         JobRunner& runner,
                                         std::uint64_t seed) override;

  /// The ask/tell form of one multi-constraint run (see core/stepper.hpp):
  /// constraint metrics arrive through RunResult::metrics of every tell()
  /// (the stepper takes over MetricRecordingRunner's bookkeeping).
  /// `problem` must outlive the stepper, and must carry no prior_samples —
  /// warm-start priors record no constraint metrics, so the
  /// multi-constraint optimizer cannot evaluate them (the closed loop
  /// never supported this either; the stepper makes it a hard error).
  [[nodiscard]] std::unique_ptr<OptimizerStepper> make_stepper(
      const OptimizationProblem& problem, std::uint64_t seed) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const std::vector<ConstraintDef>& constraints()
      const noexcept {
    return constraints_;
  }

 private:
  struct Impl;
  std::vector<ConstraintDef> constraints_;
  MultiConstraintOptions options_;
};

}  // namespace lynceus::core

#pragma once

/// \file random_search.hpp
/// The RND baseline (paper §5.2): after the common LHS bootstrap, profile
/// uniformly random untested configurations until the budget is depleted,
/// then recommend the cheapest feasible configuration tried. RND knows
/// nothing about costs a priori, so its last run may overshoot the budget.

#include <memory>

#include "core/stepper.hpp"
#include "core/types.hpp"

namespace lynceus::core {

class RandomSearch final : public Optimizer {
 public:
  /// Thin drive loop over make_stepper() — bit-identical to the classic
  /// closed-loop implementation (see core/stepper.hpp).
  [[nodiscard]] OptimizerResult optimize(const OptimizationProblem& problem,
                                         JobRunner& runner,
                                         std::uint64_t seed) override;

  /// The ask/tell form of one RND run (see core/stepper.hpp). `problem`
  /// must outlive the stepper.
  [[nodiscard]] std::unique_ptr<OptimizerStepper> make_stepper(
      const OptimizationProblem& problem, std::uint64_t seed) const override;

  [[nodiscard]] std::string name() const override { return "RND"; }
};

}  // namespace lynceus::core

#pragma once

/// \file random_search.hpp
/// The RND baseline (paper §5.2): after the common LHS bootstrap, profile
/// uniformly random untested configurations until the budget is depleted,
/// then recommend the cheapest feasible configuration tried. RND knows
/// nothing about costs a priori, so its last run may overshoot the budget.

#include "core/types.hpp"

namespace lynceus::core {

class RandomSearch final : public Optimizer {
 public:
  [[nodiscard]] OptimizerResult optimize(const OptimizationProblem& problem,
                                         JobRunner& runner,
                                         std::uint64_t seed) override;

  [[nodiscard]] std::string name() const override { return "RND"; }
};

}  // namespace lynceus::core

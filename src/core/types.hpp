#pragma once

/// \file types.hpp
/// Shared vocabulary of the optimizer library: the optimization problem
/// (paper §2), the runner abstraction that executes a job on a
/// configuration, samples, and the optimizer interface + result.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "space/config_space.hpp"

namespace lynceus::core {

using space::ConfigId;

/// How a profiling run ended. Cloud profiling runs fail and straggle in
/// practice (spot preemptions, container crashes, interference), so the run
/// contract carries the outcome explicitly instead of assuming every run
/// returns a clean (runtime, cost) pair; see eval/runner.hpp for the
/// deterministic fault-injection harness and service/tuning_service.hpp for
/// the retry/timeout/quarantine policy built on top.
enum class RunOutcome : std::uint8_t {
  /// The run completed; runtime/cost are the real measurements.
  kOk = 0,
  /// The run crashed or was lost before producing a measurement. `cost` is
  /// the partial spend billed for the attempt (still charged to the
  /// profiling budget); `runtime_seconds` is the time elapsed before the
  /// failure (informational — it is NOT a valid runtime observation and is
  /// never fed to the model).
  kFailed = 1,
  /// The run was forcefully terminated at a cap. `runtime_seconds` is the
  /// cap itself: a censored observation ("the true runtime is at least
  /// this"), which the optimizers record as an infeasible sample at the
  /// cap. `cost` is the partial spend up to termination.
  kTimedOut = 2,
};

[[nodiscard]] const char* to_string(RunOutcome outcome) noexcept;

/// Outcome of actually running the job on a configuration.
struct RunResult {
  double runtime_seconds = 0.0;
  double cost = 0.0;       ///< monetary cost paid for the run, USD
  bool timed_out = false;  ///< forcefully terminated before completing
  /// Failure-aware outcome (see RunOutcome). Runners that predate the
  /// outcome field leave it kOk and use `timed_out` alone; the two are
  /// treated uniformly by the censoring logic (`censored()`).
  RunOutcome outcome = RunOutcome::kOk;
  /// Optional additional constraint metrics (§4.4 multi-constraint
  /// extension), e.g. energy. Empty for the base problem.
  std::vector<double> metrics;

  [[nodiscard]] bool ok() const noexcept {
    return outcome == RunOutcome::kOk;
  }
  [[nodiscard]] bool failed() const noexcept {
    return outcome == RunOutcome::kFailed;
  }
  /// True when the runtime is a censored lower bound (legacy `timed_out`
  /// flag or a kTimedOut outcome): the sample is recorded but can never be
  /// feasible.
  [[nodiscard]] bool censored() const noexcept {
    return timed_out || outcome == RunOutcome::kTimedOut;
  }
};

/// Executes the target job on a configuration. The evaluation harness
/// implements this against a replay Dataset; a production deployment would
/// provision the cluster and launch the real job.
class JobRunner {
 public:
  virtual ~JobRunner() = default;
  [[nodiscard]] virtual RunResult run(ConfigId id) = 0;
};

/// One profiled configuration in the optimizer's training set.
struct Sample {
  ConfigId id = 0;
  double runtime_seconds = 0.0;
  double cost = 0.0;
  bool feasible = false;  ///< T(x) <= Tmax and not timed out
};

/// One failed profiling attempt (RunOutcome::kFailed). Failures are NOT
/// samples — they carry no runtime observation — but their partial cost is
/// billed to the budget and they are part of the resumable session state
/// (the untested-list permutation depends on when a failed config was
/// blacklisted, hence `after_samples`).
struct FailureRecord {
  ConfigId id = 0;
  double cost = 0.0;  ///< partial cost billed for the failed attempt, USD
  /// Number of samples that had been recorded when this failure was
  /// applied — the event-order key that lets snapshot restore interleave
  /// failures with samples exactly as they happened.
  std::size_t after_samples = 0;
};

/// The paper's optimization problem (§2):
///   min C(x)  s.t.  T(x) <= Tmax,  Σ_profiling C(x_i) <= B.
struct OptimizationProblem {
  std::shared_ptr<const space::ConfigSpace> space;
  /// U(x): rented-cluster price per hour for each configuration. Known a
  /// priori from the provider's price list; Lynceus exploits
  /// C(x) = T(x)·U(x) to reuse the cost model for the deadline constraint.
  std::vector<double> unit_price_per_hour;
  double tmax_seconds = 0.0;  ///< deadline Tmax
  double budget = 0.0;        ///< profiling budget B, USD
  std::size_t bootstrap_samples = 0;  ///< N initial LHS samples
  /// Warm start: measurements carried over from a previous tuning round of
  /// the same (recurrent) job. They seed the model for free — their cost
  /// was paid in the earlier round — and replace the LHS bootstrap
  /// entirely when non-empty. Ids must be distinct and within the space.
  /// A prior's `feasible` flag is treated as "the runtime measurement is
  /// trustworthy (not censored)"; feasibility under *this* round's Tmax is
  /// re-derived from the runtime.
  std::vector<Sample> prior_samples;

  /// Feasibility cost cap for configuration `id`: Tmax · U(x) in dollars.
  [[nodiscard]] double feasibility_cost_cap(ConfigId id) const {
    return tmax_seconds * unit_price_per_hour.at(id) / 3600.0;
  }

  /// Validates invariants; throws std::invalid_argument on violation.
  void validate() const;
};

/// The paper's bootstrap sizing rule (§5.2): N = max(⌈3% · |C|⌉, dims).
[[nodiscard]] std::size_t default_bootstrap_samples(
    const space::ConfigSpace& space);

struct OptimizerResult {
  /// Cheapest feasible configuration explored; if the optimizer never saw a
  /// feasible one, the cheapest explored configuration (flagged below).
  std::optional<ConfigId> recommendation;
  bool recommendation_feasible = false;
  /// Every profiled configuration, in exploration order (bootstrap first).
  std::vector<Sample> history;
  /// Failed profiling attempts, in occurrence order (empty for fault-free
  /// runs). Their partial cost is included in `budget_spent` and broken out
  /// in `budget_spent_on_failures`.
  std::vector<FailureRecord> failures;
  double budget_spent = 0.0;
  double budget_spent_on_failures = 0.0;
  /// NEX: the number of explorations performed (== history.size()).
  [[nodiscard]] std::size_t explorations() const noexcept {
    return history.size();
  }
  /// Total wall-clock seconds spent deciding which configuration to try
  /// next, and the number of such decisions (Table 3).
  double decision_seconds = 0.0;
  std::size_t decisions = 0;
};

class OptimizerStepper;

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Runs the full optimization loop. Deterministic given `seed` and a
  /// deterministic runner.
  [[nodiscard]] virtual OptimizerResult optimize(
      const OptimizationProblem& problem, JobRunner& runner,
      std::uint64_t seed) = 0;

  /// The ask/tell (suspend/resume) form of one run, or nullptr when the
  /// optimizer has no stepper implementation (see core/stepper.hpp —
  /// the four first-class optimizers all do; composite/external ones may
  /// not). `problem` must outlive the stepper. Driving the stepper with
  /// a runner reproduces optimize() bit-for-bit.
  [[nodiscard]] virtual std::unique_ptr<OptimizerStepper> make_stepper(
      const OptimizationProblem& problem, std::uint64_t seed) const;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace lynceus::core

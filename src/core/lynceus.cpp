#include "core/lynceus.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/bo.hpp"
#include "core/sequential.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace lynceus::core {

void LynceusOptions::validate() const {
  if (gh_points == 0) {
    throw std::invalid_argument("LynceusOptions: gh_points must be >= 1");
  }
  if (gamma < 0.0 || gamma > 1.0) {
    throw std::invalid_argument("LynceusOptions: gamma must lie in [0, 1]");
  }
  if (feasibility_quantile <= 0.0 || feasibility_quantile >= 1.0) {
    throw std::invalid_argument(
        "LynceusOptions: feasibility_quantile must lie in (0, 1)");
  }
}

LynceusOptimizer::LynceusOptimizer(LynceusOptions options)
    : options_(std::move(options)) {
  options_.validate();
}

std::string LynceusOptimizer::name() const {
  return util::format("Lynceus(LA=%u)", options_.lookahead);
}

namespace {

/// The Lynceus loop as a suspend/resume state machine: decide() is the
/// body of the classic while-loop (bootstrap → Γ filter → path simulation
/// → argmax reward/cost), run result application adds the §4.4 setup-cost
/// charge. Trajectories are bit-identical to the pre-ask/tell closed loop
/// (tests/test_stepper.cpp pins this against golden optimize() runs).
class LynceusStepper final : public OptimizerStepper {
 public:
  LynceusStepper(const LynceusOptions& options,
                 const OptimizationProblem& problem, std::uint64_t seed)
      : OptimizerStepper(problem, seed, options.observer),
        options_(options),
        seed_(seed),
        factory_(options_.model_factory
                     ? options_.model_factory
                     : default_tree_model_factory(*problem.space)),
        engine_(problem, engine_options(options_), factory_,
                options_.pool != nullptr ? options_.pool->worker_count() + 1
                                         : 1) {
    st_.blacklist_failed = options_.blacklist_failed;
  }

  [[nodiscard]] std::string name() const override {
    return util::format("Lynceus(LA=%u)", options_.lookahead);
  }

 protected:
  std::optional<ConfigId> decide(std::string& stop_reason) override {
    if (st_.untested.empty()) {
      stop_reason = "search space exhausted";
      return std::nullopt;
    }
    timer_.start();
    ++iteration_;

    engine_.begin_decision(st_.samples, st_.budget.remaining(),
                           util::derive_seed(seed_, iteration_));

    if (engine_.viable().empty()) {
      timer_.discard();
      // Γ = ∅: the budget affords nothing else (Alg. 1 line 25).
      stop_reason = "budget: no viable configuration left";
      return std::nullopt;
    }

    // Optional early stop (footnote 2 of the paper).
    if (options_.ei_stop_fraction > 0.0 &&
        engine_.max_viable_eic() <
            options_.ei_stop_fraction * engine_.incumbent()) {
      timer_.discard();
      stop_reason = "expected improvement below threshold";
      return std::nullopt;
    }

    // Root screening (implementation approximation; see header).
    engine_.screened_roots(options_.screen_width, roots_);

    // The engine infers testedness from the samples alone, so configs
    // blacklisted after a failed run (tested, but never sampled) can
    // resurface in its candidate set: drop them here. Fault-free runs have
    // no failures and skip this entirely (bitwise-identical trajectories).
    if (!st_.failures.empty()) {
      const auto blacklisted = [this](ConfigId id) {
        return st_.tested[id] != 0;
      };
      roots_.erase(
          std::remove_if(roots_.begin(), roots_.end(), blacklisted),
          roots_.end());
      if (roots_.empty()) {
        // Every screened root was blacklisted: re-screen at full width
        // before concluding nothing viable is left.
        engine_.screened_roots(
            static_cast<unsigned>(engine_.viable().size()), roots_);
        roots_.erase(
            std::remove_if(roots_.begin(), roots_.end(), blacklisted),
            roots_.end());
      }
      if (roots_.empty()) {
        timer_.discard();
        stop_reason = "budget: no viable configuration left";
        return std::nullopt;
      }
    }

    // Simulate one path per root, in parallel (§4.3).
    values_.assign(roots_.size(), PathValue{});
    util::maybe_parallel_for(options_.pool, roots_.size(),
                             [&](std::size_t i) {
                               values_[i] = engine_.simulate(
                                   roots_[i],
                                   util::derive_seed(
                                       seed_, iteration_ * 1000003ULL +
                                                  roots_[i]));
                             });

    double best_ratio = -std::numeric_limits<double>::infinity();
    ConfigId best_id = roots_.front();
    for (std::size_t i = 0; i < roots_.size(); ++i) {
      const double ratio =
          values_[i].reward / std::max(values_[i].cost, 1e-12);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_id = roots_[i];
      }
    }
    timer_.stop();

    if (observer_ != nullptr) {
      DecisionEvent event;
      event.iteration = static_cast<std::size_t>(iteration_);
      event.viable_count = engine_.viable().size();
      event.simulated_roots = roots_.size();
      event.chosen = best_id;
      event.predicted_cost = engine_.root_predictions()[best_id].mean;
      event.incumbent = engine_.incumbent();
      event.remaining_budget = st_.budget.remaining();
      event.best_ratio = best_ratio;
      observer_->on_decision(event);
    }
    return best_id;
  }

  void apply_decision_run(ConfigId config, const RunResult& r) override {
    // §4.4: switching the deployed configuration costs real money too.
    if (options_.setup_cost) {
      const std::optional<ConfigId> chi =
          st_.samples.empty()
              ? std::nullopt
              : std::optional<ConfigId>(st_.samples.back().id);
      st_.budget.spend(std::max(0.0, options_.setup_cost(chi, config)));
    }
    OptimizerStepper::apply_decision_run(config, r);
  }

  void save_extra(util::JsonWriter& w) const override {
    w.key("iteration").value(iteration_);
  }
  void load_extra(const util::JsonValue& extra) override {
    iteration_ = extra.at("iteration").as_uint();
  }

 private:
  static LookaheadEngine::Options engine_options(
      const LynceusOptions& options) {
    LookaheadEngine::Options eopts;
    eopts.lookahead = options.lookahead;
    eopts.gh_points = options.gh_points;
    eopts.gamma = options.gamma;
    eopts.feasibility_quantile = options.feasibility_quantile;
    eopts.setup_cost = options.setup_cost;
    eopts.root_cache = options.root_cache;
    eopts.incremental_refit = options.incremental_refit;
    eopts.branch_pool = options.branch_parallel ? options.pool : nullptr;
    return eopts;
  }

  const LynceusOptions options_;
  const std::uint64_t seed_;
  const model::ModelFactory factory_;
  LookaheadEngine engine_;
  std::uint64_t iteration_ = 0;
  std::vector<ConfigId> roots_;
  std::vector<PathValue> values_;
};

}  // namespace

std::unique_ptr<OptimizerStepper> LynceusOptimizer::make_stepper(
    const OptimizationProblem& problem, std::uint64_t seed) const {
  return std::make_unique<LynceusStepper>(options_, problem, seed);
}

OptimizerResult LynceusOptimizer::optimize(const OptimizationProblem& problem,
                                           JobRunner& runner,
                                           std::uint64_t seed) {
  auto stepper = make_stepper(problem, seed);
  return drive(*stepper, runner);
}

}  // namespace lynceus::core

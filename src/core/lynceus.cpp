#include "core/lynceus.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "core/acquisition.hpp"
#include "core/bo.hpp"
#include "core/sequential.hpp"
#include "math/distributions.hpp"
#include "util/strings.hpp"

namespace lynceus::core {

void LynceusOptions::validate() const {
  if (gh_points == 0) {
    throw std::invalid_argument("LynceusOptions: gh_points must be >= 1");
  }
  if (gamma < 0.0 || gamma > 1.0) {
    throw std::invalid_argument("LynceusOptions: gamma must lie in [0, 1]");
  }
  if (feasibility_quantile <= 0.0 || feasibility_quantile >= 1.0) {
    throw std::invalid_argument(
        "LynceusOptions: feasibility_quantile must lie in (0, 1)");
  }
}

LynceusOptimizer::LynceusOptimizer(LynceusOptions options)
    : options_(std::move(options)) {
  options_.validate();
}

std::string LynceusOptimizer::name() const {
  return util::format("Lynceus(LA=%u)", options_.lookahead);
}

namespace {

/// State Σ of one (possibly simulated) optimization trajectory: training
/// set, feasibility flags, untested mask, remaining budget β, and the
/// currently deployed configuration χ (paper §4.3, "State").
struct PathState {
  std::vector<std::uint32_t> rows;  ///< training rows (configs profiled)
  std::vector<double> y;            ///< observed / speculated costs
  std::vector<char> sample_feasible;
  std::vector<char> tested;  ///< per-config flag
  double beta = 0.0;
  std::optional<ConfigId> chi;
};

/// Model artifacts for a state: predictions for every configuration plus
/// the incumbent y*.
struct ModelCtx {
  std::vector<model::Prediction> preds;
  double y_star = 0.0;
};

/// Reward and cost of an exploration path (return of ExplorePaths).
struct PathValue {
  double reward = 0.0;
  double cost = 0.0;
};

/// Per-worker scratch: one model instance (reused across depths — only the
/// extracted predictions are kept per level) and per-depth buffers to avoid
/// allocation inside the recursion.
struct Workspace {
  std::unique_ptr<model::Regressor> model;
  std::vector<PathState> state_by_depth;
  std::vector<ModelCtx> ctx_by_depth;
};

/// Hands exclusive workspaces to concurrently running root simulations.
/// The lock cost is negligible next to a path simulation (milliseconds).
class WorkspacePool {
 public:
  explicit WorkspacePool(std::vector<Workspace>& all) {
    for (auto& ws : all) free_.push_back(&ws);
  }

  Workspace* acquire() {
    std::lock_guard lock(mutex_);
    if (free_.empty()) {
      throw std::logic_error("WorkspacePool: more tasks in flight than workers");
    }
    Workspace* ws = free_.back();
    free_.pop_back();
    return ws;
  }

  void release(Workspace* ws) {
    std::lock_guard lock(mutex_);
    free_.push_back(ws);
  }

 private:
  std::mutex mutex_;
  std::vector<Workspace*> free_;
};

}  // namespace

struct LynceusOptimizer::Impl {
  const LynceusOptions& opts;
  const OptimizationProblem& problem;
  const model::FeatureMatrix fm;
  const math::GaussHermite quadrature;
  std::uint64_t seed;

  Impl(const LynceusOptions& o, const OptimizationProblem& p, std::uint64_t s)
      : opts(o), problem(p), fm(*p.space), quadrature(o.gh_points), seed(s) {}

  [[nodiscard]] double setup_cost(const std::optional<ConfigId>& from,
                                  ConfigId to) const {
    return opts.setup_cost ? opts.setup_cost(from, to) : 0.0;
  }

  /// EIc(x) under a model context (paper §3).
  [[nodiscard]] double eic(const ModelCtx& ctx, ConfigId x) const {
    return constrained_ei(ctx.y_star, ctx.preds[x],
                          problem.feasibility_cost_cap(x));
  }

  /// Fits the model on a state and fills the context (predictions + y*).
  void build_ctx(model::Regressor& model, const PathState& st, ModelCtx& ctx,
                 std::uint64_t fit_seed) const {
    model.fit(fm, st.rows, st.y, fit_seed);
    model.predict_all(fm, ctx.preds);
    ctx.y_star = incumbent(st, ctx.preds);
  }

  /// Incumbent y*: cheapest feasible sample, or the paper's fallback
  /// (max sampled cost + 3 · max predictive stddev over untested points).
  [[nodiscard]] double incumbent(
      const PathState& st, const std::vector<model::Prediction>& preds) const {
    bool any = false;
    double best = 0.0;
    double most_expensive = st.y.front();
    for (std::size_t i = 0; i < st.y.size(); ++i) {
      most_expensive = std::max(most_expensive, st.y[i]);
      if (st.sample_feasible[i] != 0 && (!any || st.y[i] < best)) {
        best = st.y[i];
        any = true;
      }
    }
    if (any) return best;
    double max_stddev = 0.0;
    for (std::size_t id = 0; id < preds.size(); ++id) {
      if (st.tested[id] == 0) {
        max_stddev = std::max(max_stddev, preds[id].stddev);
      }
    }
    return most_expensive + 3.0 * max_stddev;
  }

  /// Budget-viable untested configurations (Algorithm 1 line 23 /
  /// Algorithm 2 line 22): P(c(x) <= β) >= feasibility_quantile.
  void viable_set(const PathState& st, const ModelCtx& ctx,
                  std::vector<ConfigId>& out) const {
    out.clear();
    for (std::size_t id = 0; id < ctx.preds.size(); ++id) {
      if (st.tested[id] != 0) continue;
      if (prob_within(st.beta, ctx.preds[id]) >= opts.feasibility_quantile) {
        out.push_back(static_cast<ConfigId>(id));
      }
    }
  }

  /// NextStep (Algorithm 2, lines 21-25): argmax EIc over the viable set,
  /// or nullopt when the set is empty.
  [[nodiscard]] std::optional<ConfigId> next_step(const PathState& st,
                                                  const ModelCtx& ctx) const {
    double best = -std::numeric_limits<double>::infinity();
    std::optional<ConfigId> best_id;
    for (std::size_t id = 0; id < ctx.preds.size(); ++id) {
      if (st.tested[id] != 0) continue;
      if (prob_within(st.beta, ctx.preds[id]) < opts.feasibility_quantile) {
        continue;
      }
      const double acq = eic(ctx, static_cast<ConfigId>(id));
      if (acq > best) {
        best = acq;
        best_id = static_cast<ConfigId>(id);
      }
    }
    return best_id;
  }

  /// ExplorePaths (Algorithm 2): reward and cost of the path that, from
  /// state `st` (whose model context is `ctx`), explores `x` next and then
  /// continues for up to `l` further steps.
  PathValue explore(Workspace& ws, const PathState& st, const ModelCtx& ctx,
                    ConfigId x, unsigned l, std::uint64_t path_seed) const {
    const model::Prediction& pred = ctx.preds[x];
    PathValue v;
    v.reward = eic(ctx, x);
    v.cost = pred.mean + setup_cost(st.chi, x);
    if (l == 0) return v;

    const auto nodes = quadrature.for_normal(pred.mean, pred.stddev);
    const std::size_t depth = ws.state_by_depth.size() -
                              static_cast<std::size_t>(l);
    PathState& child = ws.state_by_depth[depth];
    ModelCtx& child_ctx = ws.ctx_by_depth[depth];
    const double cap = problem.feasibility_cost_cap(x);

    for (std::size_t i = 0; i < nodes.size(); ++i) {
      // Speculated cost: a run can never be free or negative; clamp to a
      // small fraction of the predicted mean.
      const double ci = std::max(nodes[i].value, 0.001 * pred.mean);
      const double wi = nodes[i].weight;

      // Build the child state Σ' (Algorithm 2, lines 8-13).
      child.rows = st.rows;
      child.y = st.y;
      child.sample_feasible = st.sample_feasible;
      child.tested = st.tested;
      child.rows.push_back(x);
      child.y.push_back(ci);
      child.sample_feasible.push_back(ci <= cap ? 1 : 0);
      child.tested[x] = 1;
      child.beta = st.beta - ci - setup_cost(st.chi, x);
      child.chi = x;

      build_ctx(*ws.model, child, child_ctx,
                util::derive_seed(path_seed, i + 1));
      const auto x_next = next_step(child, child_ctx);
      if (!x_next) continue;  // no viable continuation (lines 15-16)

      const PathValue sub =
          explore(ws, child, child_ctx, *x_next, l - 1,
                  util::derive_seed(path_seed, 131 * (i + 1) + 7));
      v.cost += wi * sub.cost;
      v.reward += opts.gamma * wi * sub.reward;
    }
    return v;
  }
};

OptimizerResult LynceusOptimizer::optimize(const OptimizationProblem& problem,
                                           JobRunner& runner,
                                           std::uint64_t seed) {
  LoopState st(problem, runner, seed);
  DecisionTimer timer;
  st.bootstrap();
  if (options_.observer != nullptr) {
    for (const auto& s : st.samples) options_.observer->on_bootstrap(s);
  }

  const Impl impl(options_, problem, seed);
  const model::ModelFactory factory =
      options_.model_factory ? options_.model_factory
                             : default_tree_model_factory(*problem.space);

  auto root_model = factory();
  ModelCtx root_ctx;
  PathState root_state;
  std::vector<ConfigId> viable;
  std::vector<ConfigId> roots;

  // One workspace per worker (index 0 = calling thread).
  const std::size_t workers =
      options_.pool != nullptr ? options_.pool->worker_count() + 1 : 1;
  std::vector<Workspace> workspaces(workers);
  for (auto& ws : workspaces) {
    ws.model = factory();
    ws.state_by_depth.resize(options_.lookahead + 1);
    ws.ctx_by_depth.resize(options_.lookahead + 1);
  }
  WorkspacePool ws_pool(workspaces);

  std::uint64_t iteration = 0;
  while (!st.untested.empty()) {
    timer.start();
    ++iteration;

    // Mirror the loop state into a PathState (the root Σ).
    root_state.rows.clear();
    root_state.y.clear();
    root_state.sample_feasible.clear();
    for (const auto& s : st.samples) {
      root_state.rows.push_back(s.id);
      root_state.y.push_back(s.cost);
      root_state.sample_feasible.push_back(s.feasible ? 1 : 0);
    }
    root_state.tested.assign(problem.space->size(), 0);
    for (const auto& s : st.samples) root_state.tested[s.id] = 1;
    root_state.beta = st.budget.remaining();
    root_state.chi = st.samples.empty()
                         ? std::nullopt
                         : std::optional<ConfigId>(st.samples.back().id);

    impl.build_ctx(*root_model, root_state, root_ctx,
                   util::derive_seed(seed, iteration));

    impl.viable_set(root_state, root_ctx, viable);
    if (viable.empty()) {
      timer.discard();
      if (options_.observer != nullptr) {
        options_.observer->on_stop("budget: no viable configuration left");
      }
      break;  // Γ = ∅: the budget affords nothing else (Alg. 1 line 25)
    }

    // Optional early stop (footnote 2 of the paper).
    if (options_.ei_stop_fraction > 0.0) {
      double best_eic = 0.0;
      for (ConfigId id : viable) {
        best_eic = std::max(best_eic, impl.eic(root_ctx, id));
      }
      if (best_eic < options_.ei_stop_fraction * root_ctx.y_star) {
        timer.discard();
        if (options_.observer != nullptr) {
          options_.observer->on_stop("expected improvement below threshold");
        }
        break;
      }
    }

    // Root screening (implementation approximation; see header).
    roots = viable;
    if (options_.screen_width > 0 && roots.size() > options_.screen_width) {
      std::partial_sort(
          roots.begin(), roots.begin() + options_.screen_width, roots.end(),
          [&](ConfigId a, ConfigId b) {
            const double sa = impl.eic(root_ctx, a) /
                              std::max(root_ctx.preds[a].mean, 1e-12);
            const double sb = impl.eic(root_ctx, b) /
                              std::max(root_ctx.preds[b].mean, 1e-12);
            return sa > sb;
          });
      roots.resize(options_.screen_width);
    }

    // Simulate one path per root, in parallel (§4.3).
    std::vector<PathValue> values(roots.size());
    auto body = [&](std::size_t i) {
      Workspace* ws = ws_pool.acquire();
      try {
        values[i] = impl.explore(
            *ws, root_state, root_ctx, roots[i], options_.lookahead,
            util::derive_seed(seed, iteration * 1000003ULL + roots[i]));
      } catch (...) {
        ws_pool.release(ws);
        throw;
      }
      ws_pool.release(ws);
    };
    util::maybe_parallel_for(options_.pool, roots.size(), body);

    double best_ratio = -std::numeric_limits<double>::infinity();
    ConfigId best_id = roots.front();
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const double ratio = values[i].reward / std::max(values[i].cost, 1e-12);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_id = roots[i];
      }
    }
    timer.stop();

    if (options_.observer != nullptr) {
      DecisionEvent event;
      event.iteration = static_cast<std::size_t>(iteration);
      event.viable_count = viable.size();
      event.simulated_roots = roots.size();
      event.chosen = best_id;
      event.predicted_cost = root_ctx.preds[best_id].mean;
      event.incumbent = root_ctx.y_star;
      event.remaining_budget = st.budget.remaining();
      event.best_ratio = best_ratio;
      options_.observer->on_decision(event);
    }

    // §4.4: switching the deployed configuration costs real money too.
    if (options_.setup_cost) {
      st.budget.spend(
          std::max(0.0, options_.setup_cost(root_state.chi, best_id)));
    }
    const Sample& ran = st.profile(best_id);
    if (options_.observer != nullptr) options_.observer->on_run(ran);
  }

  if (st.untested.empty() && options_.observer != nullptr) {
    options_.observer->on_stop("search space exhausted");
  }
  OptimizerResult out = st.finalize();
  timer.write_to(out);
  return out;
}

}  // namespace lynceus::core

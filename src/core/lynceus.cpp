#include "core/lynceus.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/bo.hpp"
#include "core/sequential.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace lynceus::core {

void LynceusOptions::validate() const {
  if (gh_points == 0) {
    throw std::invalid_argument("LynceusOptions: gh_points must be >= 1");
  }
  if (gamma < 0.0 || gamma > 1.0) {
    throw std::invalid_argument("LynceusOptions: gamma must lie in [0, 1]");
  }
  if (feasibility_quantile <= 0.0 || feasibility_quantile >= 1.0) {
    throw std::invalid_argument(
        "LynceusOptions: feasibility_quantile must lie in (0, 1)");
  }
}

LynceusOptimizer::LynceusOptimizer(LynceusOptions options)
    : options_(std::move(options)) {
  options_.validate();
}

std::string LynceusOptimizer::name() const {
  return util::format("Lynceus(LA=%u)", options_.lookahead);
}

OptimizerResult LynceusOptimizer::optimize(const OptimizationProblem& problem,
                                           JobRunner& runner,
                                           std::uint64_t seed) {
  LoopState st(problem, runner, seed);
  DecisionTimer timer;
  st.bootstrap();
  if (options_.observer != nullptr) {
    for (const auto& s : st.samples) options_.observer->on_bootstrap(s);
  }

  const model::ModelFactory factory =
      options_.model_factory ? options_.model_factory
                             : default_tree_model_factory(*problem.space);

  LookaheadEngine::Options eopts;
  eopts.lookahead = options_.lookahead;
  eopts.gh_points = options_.gh_points;
  eopts.gamma = options_.gamma;
  eopts.feasibility_quantile = options_.feasibility_quantile;
  eopts.setup_cost = options_.setup_cost;
  eopts.root_cache = options_.root_cache;
  eopts.incremental_refit = options_.incremental_refit;
  eopts.branch_pool = options_.branch_parallel ? options_.pool : nullptr;
  // One workspace per worker (index 0 = calling thread).
  const std::size_t workers =
      options_.pool != nullptr ? options_.pool->worker_count() + 1 : 1;
  LookaheadEngine engine(problem, std::move(eopts), factory, workers);

  std::vector<ConfigId> roots;
  std::vector<PathValue> values;

  std::uint64_t iteration = 0;
  while (!st.untested.empty()) {
    timer.start();
    ++iteration;

    engine.begin_decision(st.samples, st.budget.remaining(),
                          util::derive_seed(seed, iteration));

    if (engine.viable().empty()) {
      timer.discard();
      if (options_.observer != nullptr) {
        options_.observer->on_stop("budget: no viable configuration left");
      }
      break;  // Γ = ∅: the budget affords nothing else (Alg. 1 line 25)
    }

    // Optional early stop (footnote 2 of the paper).
    if (options_.ei_stop_fraction > 0.0 &&
        engine.max_viable_eic() <
            options_.ei_stop_fraction * engine.incumbent()) {
      timer.discard();
      if (options_.observer != nullptr) {
        options_.observer->on_stop("expected improvement below threshold");
      }
      break;
    }

    // Root screening (implementation approximation; see header).
    engine.screened_roots(options_.screen_width, roots);

    // Simulate one path per root, in parallel (§4.3).
    values.assign(roots.size(), PathValue{});
    util::maybe_parallel_for(options_.pool, roots.size(), [&](std::size_t i) {
      values[i] = engine.simulate(
          roots[i], util::derive_seed(seed, iteration * 1000003ULL + roots[i]));
    });

    double best_ratio = -std::numeric_limits<double>::infinity();
    ConfigId best_id = roots.front();
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const double ratio = values[i].reward / std::max(values[i].cost, 1e-12);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_id = roots[i];
      }
    }
    timer.stop();

    if (options_.observer != nullptr) {
      DecisionEvent event;
      event.iteration = static_cast<std::size_t>(iteration);
      event.viable_count = engine.viable().size();
      event.simulated_roots = roots.size();
      event.chosen = best_id;
      event.predicted_cost = engine.root_predictions()[best_id].mean;
      event.incumbent = engine.incumbent();
      event.remaining_budget = st.budget.remaining();
      event.best_ratio = best_ratio;
      options_.observer->on_decision(event);
    }

    // §4.4: switching the deployed configuration costs real money too.
    if (options_.setup_cost) {
      const std::optional<ConfigId> chi =
          st.samples.empty() ? std::nullopt
                             : std::optional<ConfigId>(st.samples.back().id);
      st.budget.spend(std::max(0.0, options_.setup_cost(chi, best_id)));
    }
    const Sample& ran = st.profile(best_id);
    if (options_.observer != nullptr) options_.observer->on_run(ran);
  }

  if (st.untested.empty() && options_.observer != nullptr) {
    options_.observer->on_stop("search space exhausted");
  }
  OptimizerResult out = st.finalize();
  timer.write_to(out);
  return out;
}

}  // namespace lynceus::core

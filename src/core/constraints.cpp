#include "core/constraints.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/bo.hpp"
#include "core/lookahead.hpp"
#include "core/sequential.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace lynceus::core {

void MultiConstraintOptions::validate() const {
  if (gh_points == 0) {
    throw std::invalid_argument(
        "MultiConstraintOptions: gh_points must be >= 1");
  }
  if (gamma < 0.0 || gamma > 1.0) {
    throw std::invalid_argument(
        "MultiConstraintOptions: gamma must lie in [0, 1]");
  }
  if (feasibility_quantile <= 0.0 || feasibility_quantile >= 1.0) {
    throw std::invalid_argument(
        "MultiConstraintOptions: feasibility_quantile must lie in (0, 1)");
  }
  if (prune_weight < 0.0 || prune_weight >= 1.0) {
    throw std::invalid_argument(
        "MultiConstraintOptions: prune_weight must lie in [0, 1)");
  }
}

MultiConstraintLynceus::MultiConstraintLynceus(
    std::vector<ConstraintDef> constraints, MultiConstraintOptions options)
    : constraints_(std::move(constraints)), options_(std::move(options)) {
  options_.validate();
  for (const auto& c : constraints_) {
    if (!c.threshold) {
      throw std::invalid_argument("ConstraintDef '" + c.name +
                                  "': threshold function is required");
    }
  }
}

std::string MultiConstraintLynceus::name() const {
  return util::format("Lynceus-MC(LA=%u,I=%zu)", options_.lookahead,
                      constraints_.size());
}

OptimizerResult MultiConstraintLynceus::optimize(
    const OptimizationProblem& problem, JobRunner& runner,
    std::uint64_t seed) {
  LoopState st(problem, runner, seed);
  DecisionTimer timer;

  MetricRecordingRunner recorder(runner, constraints_.size());
  st.runner = &recorder;
  st.bootstrap();

  const model::ModelFactory factory =
      options_.model_factory ? options_.model_factory
                             : default_tree_model_factory(*problem.space);

  MultiConstraintEngine::Options eopts;
  eopts.lookahead = options_.lookahead;
  eopts.gh_points = options_.gh_points;
  eopts.gamma = options_.gamma;
  eopts.feasibility_quantile = options_.feasibility_quantile;
  eopts.prune_weight = options_.prune_weight;
  eopts.thresholds.reserve(constraints_.size());
  for (const auto& c : constraints_) eopts.thresholds.push_back(c.threshold);
  eopts.root_cache = options_.root_cache;
  eopts.incremental_refit = options_.incremental_refit;
  eopts.branch_pool = options_.branch_parallel ? options_.pool : nullptr;
  // One workspace per worker (index 0 = calling thread).
  const std::size_t workers =
      options_.pool != nullptr ? options_.pool->worker_count() + 1 : 1;
  MultiConstraintEngine engine(problem, std::move(eopts), factory, workers);

  auto sample_feasible = [&](std::size_t i) {
    if (!st.samples[i].feasible) return false;
    for (const auto& c : constraints_) {
      if (recorder.metrics()[i][c.metric_index] >
          c.threshold(st.samples[i].id)) {
        return false;
      }
    }
    return true;
  };

  std::vector<std::uint32_t> rows;
  std::vector<double> y_cost;
  std::vector<std::vector<double>> y_metric;
  std::vector<char> feasible;
  std::vector<PathValue> values;

  std::uint64_t iteration = 0;
  while (!st.untested.empty()) {
    timer.start();
    ++iteration;

    rows.clear();
    y_cost.clear();
    y_metric.assign(constraints_.size(), {});
    feasible.clear();
    for (std::size_t i = 0; i < st.samples.size(); ++i) {
      rows.push_back(st.samples[i].id);
      y_cost.push_back(st.samples[i].cost);
      for (std::size_t c = 0; c < constraints_.size(); ++c) {
        y_metric[c].push_back(
            recorder.metrics()[i][constraints_[c].metric_index]);
      }
      feasible.push_back(sample_feasible(i) ? 1 : 0);
    }

    engine.begin_decision(rows, y_cost, y_metric, feasible,
                          st.budget.remaining(),
                          util::derive_seed(seed, iteration));

    // Γ = ∅: the budget affords nothing else.
    const std::vector<ConfigId>& roots = engine.viable();
    if (roots.empty()) {
      timer.stop();
      break;
    }

    // One simulated path per viable root (§4.4 uses no root screening),
    // in parallel when a pool is provided — root paths are independent.
    values.assign(roots.size(), PathValue{});
    util::maybe_parallel_for(options_.pool, roots.size(), [&](std::size_t i) {
      values[i] = engine.simulate(
          roots[i], util::derive_seed(seed, iteration * 1000003ULL + roots[i]));
    });

    double best_ratio = -std::numeric_limits<double>::infinity();
    ConfigId best_id = roots.front();
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const double ratio = values[i].reward / std::max(values[i].cost, 1e-12);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_id = roots[i];
      }
    }
    timer.stop();

    st.profile(best_id);
    // Patch the sample's feasibility with the auxiliary constraints so the
    // final recommendation respects all of them.
    st.samples.back().feasible = sample_feasible(st.samples.size() - 1);
  }

  OptimizerResult out = st.finalize();
  timer.write_to(out);
  return out;
}

}  // namespace lynceus::core

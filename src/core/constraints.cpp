#include "core/constraints.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/bo.hpp"
#include "core/lookahead.hpp"
#include "core/sequential.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace lynceus::core {

void MultiConstraintOptions::validate() const {
  if (gh_points == 0) {
    throw std::invalid_argument(
        "MultiConstraintOptions: gh_points must be >= 1");
  }
  if (gamma < 0.0 || gamma > 1.0) {
    throw std::invalid_argument(
        "MultiConstraintOptions: gamma must lie in [0, 1]");
  }
  if (feasibility_quantile <= 0.0 || feasibility_quantile >= 1.0) {
    throw std::invalid_argument(
        "MultiConstraintOptions: feasibility_quantile must lie in (0, 1)");
  }
  if (prune_weight < 0.0 || prune_weight >= 1.0) {
    throw std::invalid_argument(
        "MultiConstraintOptions: prune_weight must lie in [0, 1)");
  }
}

MultiConstraintLynceus::MultiConstraintLynceus(
    std::vector<ConstraintDef> constraints, MultiConstraintOptions options)
    : constraints_(std::move(constraints)), options_(std::move(options)) {
  options_.validate();
  for (const auto& c : constraints_) {
    if (!c.threshold) {
      throw std::invalid_argument("ConstraintDef '" + c.name +
                                  "': threshold function is required");
    }
  }
}

std::string MultiConstraintLynceus::name() const {
  return util::format("Lynceus-MC(LA=%u,I=%zu)", options_.lookahead,
                      constraints_.size());
}

namespace {

/// The §4.4 multi-constraint loop as an ask/tell state machine (see
/// core/stepper.hpp). The stepper records every run's auxiliary metrics
/// from RunResult::metrics — the job MetricRecordingRunner used to do
/// inside the closed loop — so it never needs a runner of its own.
/// Trajectories are bit-identical to the pre-ask/tell implementation.
class MultiConstraintStepper final : public OptimizerStepper {
 public:
  MultiConstraintStepper(const std::vector<ConstraintDef>& constraints,
                         const MultiConstraintOptions& options,
                         const OptimizationProblem& problem,
                         std::uint64_t seed)
      : OptimizerStepper(problem, seed, options.observer),
        constraints_(constraints),
        options_(options),
        seed_(seed),
        factory_(options_.model_factory
                     ? options_.model_factory
                     : default_tree_model_factory(*problem.space)),
        engine_(problem, engine_options(constraints_, options_), factory_,
                options_.pool != nullptr ? options_.pool->worker_count() + 1
                                         : 1) {
    if (!problem.prior_samples.empty()) {
      throw std::invalid_argument(
          "MultiConstraintLynceus: prior_samples carry no constraint "
          "metrics and are not supported");
    }
    st_.blacklist_failed = options_.blacklist_failed;
  }

  [[nodiscard]] std::string name() const override {
    return util::format("Lynceus-MC(LA=%u,I=%zu)", options_.lookahead,
                        constraints_.size());
  }

 protected:
  std::optional<ConfigId> decide(std::string& stop_reason) override {
    if (st_.untested.empty()) {
      stop_reason = "search space exhausted";
      return std::nullopt;
    }
    timer_.start();
    ++iteration_;

    rows_.clear();
    y_cost_.clear();
    y_metric_.assign(constraints_.size(), {});
    feasible_.clear();
    for (std::size_t i = 0; i < st_.samples.size(); ++i) {
      rows_.push_back(st_.samples[i].id);
      y_cost_.push_back(st_.samples[i].cost);
      for (std::size_t c = 0; c < constraints_.size(); ++c) {
        y_metric_[c].push_back(metrics_[i][constraints_[c].metric_index]);
      }
      feasible_.push_back(sample_feasible(i) ? 1 : 0);
    }

    engine_.begin_decision(rows_, y_cost_, y_metric_, feasible_,
                           st_.budget.remaining(),
                           util::derive_seed(seed_, iteration_));

    // Γ = ∅: the budget affords nothing else. (timer_.stop(), not
    // discard(): the closed loop counted this aborted decision, and the
    // decisions count is part of the bit-parity contract.)
    // The engine infers testedness from the sample rows, so configs
    // blacklisted after a failed run would resurface in Γ: filter them
    // out. Fault-free runs have no failures and take the reference
    // directly (no copy, bitwise-identical trajectories).
    const std::vector<ConfigId>* roots_ptr = &engine_.viable();
    if (!st_.failures.empty()) {
      screened_.clear();
      for (const ConfigId id : *roots_ptr) {
        if (st_.tested[id] == 0) screened_.push_back(id);
      }
      roots_ptr = &screened_;
    }
    const std::vector<ConfigId>& roots = *roots_ptr;
    if (roots.empty()) {
      timer_.stop();
      stop_reason = "budget: no viable configuration left";
      return std::nullopt;
    }

    // One simulated path per viable root (§4.4 uses no root screening),
    // in parallel when a pool is provided — root paths are independent.
    values_.assign(roots.size(), PathValue{});
    util::maybe_parallel_for(
        options_.pool, roots.size(), [&](std::size_t i) {
          values_[i] = engine_.simulate(
              roots[i],
              util::derive_seed(seed_, iteration_ * 1000003ULL + roots[i]));
        });

    double best_ratio = -std::numeric_limits<double>::infinity();
    ConfigId best_id = roots.front();
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const double ratio =
          values_[i].reward / std::max(values_[i].cost, 1e-12);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_id = roots[i];
      }
    }
    timer_.stop();

    if (observer_ != nullptr) {
      DecisionEvent event;
      event.iteration = static_cast<std::size_t>(iteration_);
      event.viable_count = roots.size();
      event.simulated_roots = roots.size();
      event.chosen = best_id;
      event.predicted_cost = engine_.root_cost_predictions()[best_id].mean;
      event.incumbent = engine_.incumbent();
      event.remaining_budget = st_.budget.remaining();
      event.best_ratio = best_ratio;
      observer_->on_decision(event);
    }
    return best_id;
  }

  void apply_bootstrap_run(ConfigId config, const RunResult& r) override {
    record_metrics(r);
    st_.record(config, r);
  }

  void apply_decision_run(ConfigId config, const RunResult& r) override {
    record_metrics(r);
    const Sample& ran = st_.record(config, r);
    // Patch the sample's feasibility with the auxiliary constraints so the
    // final recommendation respects all of them.
    st_.samples.back().feasible = sample_feasible(st_.samples.size() - 1);
    if (observer_ != nullptr) observer_->on_run(ran);
  }

  void save_extra(util::JsonWriter& w) const override {
    w.key("iteration").value(iteration_);
    w.key("metrics").begin_array();
    for (const auto& per_run : metrics_) {
      w.begin_array();
      for (double m : per_run) w.value_exact(m);
      w.end_array();
    }
    w.end_array();
  }
  void load_extra(const util::JsonValue& extra) override {
    iteration_ = extra.at("iteration").as_uint();
    metrics_.clear();
    for (const util::JsonValue& per_run : extra.at("metrics").items()) {
      std::vector<double> row;
      row.reserve(per_run.size());
      for (const util::JsonValue& m : per_run.items()) {
        row.push_back(m.as_double());
      }
      metrics_.push_back(std::move(row));
    }
    if (metrics_.size() != st_.samples.size()) {
      throw std::runtime_error(
          "MultiConstraintLynceus: snapshot metrics/samples mismatch");
    }
  }

 private:
  static MultiConstraintEngine::Options engine_options(
      const std::vector<ConstraintDef>& constraints,
      const MultiConstraintOptions& options) {
    MultiConstraintEngine::Options eopts;
    eopts.lookahead = options.lookahead;
    eopts.gh_points = options.gh_points;
    eopts.gamma = options.gamma;
    eopts.feasibility_quantile = options.feasibility_quantile;
    eopts.prune_weight = options.prune_weight;
    eopts.thresholds.reserve(constraints.size());
    for (const auto& c : constraints) eopts.thresholds.push_back(c.threshold);
    eopts.root_cache = options.root_cache;
    eopts.incremental_refit = options.incremental_refit;
    eopts.branch_pool = options.branch_parallel ? options.pool : nullptr;
    return eopts;
  }

  void record_metrics(const RunResult& r) {
    if (r.metrics.size() < constraints_.size()) {
      throw std::runtime_error(
          "MultiConstraintLynceus: run result carries too few metrics");
    }
    metrics_.push_back(r.metrics);
  }

  [[nodiscard]] bool sample_feasible(std::size_t i) const {
    if (!st_.samples[i].feasible) return false;
    for (const auto& c : constraints_) {
      if (metrics_[i][c.metric_index] > c.threshold(st_.samples[i].id)) {
        return false;
      }
    }
    return true;
  }

  const std::vector<ConstraintDef> constraints_;
  const MultiConstraintOptions options_;
  const std::uint64_t seed_;
  const model::ModelFactory factory_;
  MultiConstraintEngine engine_;
  std::uint64_t iteration_ = 0;
  std::vector<std::vector<double>> metrics_;  ///< per-sample metric vectors
  std::vector<std::uint32_t> rows_;
  std::vector<double> y_cost_;
  std::vector<std::vector<double>> y_metric_;
  std::vector<char> feasible_;
  std::vector<PathValue> values_;
  std::vector<ConfigId> screened_;  ///< viable minus blacklisted configs
};

}  // namespace

std::unique_ptr<OptimizerStepper> MultiConstraintLynceus::make_stepper(
    const OptimizationProblem& problem, std::uint64_t seed) const {
  return std::make_unique<MultiConstraintStepper>(constraints_, options_,
                                                  problem, seed);
}

OptimizerResult MultiConstraintLynceus::optimize(
    const OptimizationProblem& problem, JobRunner& runner,
    std::uint64_t seed) {
  auto stepper = make_stepper(problem, seed);
  return drive(*stepper, runner);
}

}  // namespace lynceus::core

#pragma once

/// \file constraints_reference.hpp
/// The naive copy-based reference implementation of the multi-constraint
/// Lynceus path simulation (paper §4.4) — the semantics oracle for
/// MultiConstraintEngine.
///
/// This is a faithful, header-only port of the pre-engine
/// `MultiConstraintLynceus` decision loop: per-branch deep-copied
/// `McState`s, full-space `predict_all` at every branch, per-consumer
/// `prob_within` scans, and heap-allocated joint-speculation combos. It is
/// deliberately slow and allocation-heavy; its only job is to pin the
/// trajectory semantics bit-for-bit. The golden-trajectory tests
/// (tests/test_constraints.cpp) assert that the production optimizer picks
/// the identical configuration sequence, and bench_micro measures the
/// speedup of the engine over this path.
///
/// Mirrors the single-constraint methodology of PR 1 (NaiveLynceus in
/// tests/test_lookahead.cpp); lives in src/ rather than tests/ so the
/// bench binaries can drive single reference decisions too.

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/acquisition.hpp"
#include "core/bo.hpp"
#include "core/constraints.hpp"
#include "core/lookahead.hpp"
#include "core/sequential.hpp"
#include "math/gauss_hermite.hpp"
#include "util/rng.hpp"

namespace lynceus::core::reference {

/// Trajectory state: training rows with cost and per-constraint metric
/// targets. Deep-copied per speculated branch — the copies the engine's
/// delta states replace.
struct McState {
  std::vector<std::uint32_t> rows;
  std::vector<double> y_cost;
  std::vector<std::vector<double>> y_metric;  // [constraint][sample]
  std::vector<char> sample_feasible;
  std::vector<char> tested;
  double beta = 0.0;
};

/// Full-space predictions of one node's models, plus the incumbent.
struct McCtx {
  std::vector<model::Prediction> cost_preds;
  std::vector<std::vector<model::Prediction>> metric_preds;
  double y_star = 0.0;
};

/// One pruned combination of speculated (cost, metrics...) values.
struct SpeculationCombo {
  double cost = 0.0;
  std::vector<double> metrics;
  double weight = 0.0;
};

/// The naive decision core: build_ctx / next_step / explore over deep
/// copies. Exposed separately from the optimizer loop so bench_micro can
/// time single reference decisions.
class McSimulator {
 public:
  McSimulator(const OptimizationProblem& problem,
              const std::vector<ConstraintDef>& constraints,
              const MultiConstraintOptions& options,
              const model::ModelFactory& factory)
      : problem_(problem),
        constraints_(constraints),
        options_(options),
        fm_(*problem.space),
        quadrature_(options.gh_points) {
    cost_model_ = factory();
    metric_models_.reserve(constraints_.size());
    for (std::size_t i = 0; i < constraints_.size(); ++i) {
      metric_models_.push_back(factory());
    }
  }

  /// EIc with the product of all constraint-satisfaction probabilities
  /// (§4.4, modification 1).
  [[nodiscard]] double eic(const McCtx& ctx, ConfigId x) const {
    double acq = expected_improvement(ctx.y_star, ctx.cost_preds[x]);
    if (acq <= 0.0) return 0.0;
    acq *= prob_within(problem_.feasibility_cost_cap(x), ctx.cost_preds[x]);
    for (std::size_t i = 0; i < constraints_.size(); ++i) {
      acq *= prob_within(constraints_[i].threshold(x),
                         ctx.metric_preds[i][x]);
    }
    return acq;
  }

  void build_ctx(const McState& st, McCtx& ctx, std::uint64_t fit_seed) {
    cost_model_->fit(fm_, st.rows, st.y_cost, util::derive_seed(fit_seed, 0));
    cost_model_->predict_all(fm_, ctx.cost_preds);
    ctx.metric_preds.resize(constraints_.size());
    for (std::size_t i = 0; i < constraints_.size(); ++i) {
      metric_models_[i]->fit(fm_, st.rows, st.y_metric[i],
                             util::derive_seed(fit_seed, i + 1));
      metric_models_[i]->predict_all(fm_, ctx.metric_preds[i]);
    }

    bool any = false;
    double best = 0.0;
    double most_expensive = st.y_cost.front();
    for (std::size_t i = 0; i < st.y_cost.size(); ++i) {
      most_expensive = std::max(most_expensive, st.y_cost[i]);
      if (st.sample_feasible[i] != 0 && (!any || st.y_cost[i] < best)) {
        best = st.y_cost[i];
        any = true;
      }
    }
    if (any) {
      ctx.y_star = best;
    } else {
      double max_stddev = 0.0;
      for (std::size_t id = 0; id < ctx.cost_preds.size(); ++id) {
        if (st.tested[id] == 0) {
          max_stddev = std::max(max_stddev, ctx.cost_preds[id].stddev);
        }
      }
      ctx.y_star = most_expensive + 3.0 * max_stddev;
    }
  }

  [[nodiscard]] std::optional<ConfigId> next_step(const McState& st,
                                                  const McCtx& ctx) const {
    double best = -std::numeric_limits<double>::infinity();
    std::optional<ConfigId> best_id;
    for (std::size_t id = 0; id < ctx.cost_preds.size(); ++id) {
      if (st.tested[id] != 0) continue;
      if (prob_within(st.beta, ctx.cost_preds[id]) <
          options_.feasibility_quantile) {
        continue;
      }
      const double acq = eic(ctx, static_cast<ConfigId>(id));
      if (acq > best) {
        best = acq;
        best_id = static_cast<ConfigId>(id);
      }
    }
    return best_id;
  }

  /// Joint speculation (§4.4, modification 2): Cartesian product of the
  /// per-variable Gauss–Hermite discretizations, pruned of combinations
  /// with weight below prune_weight and renormalized.
  [[nodiscard]] std::vector<SpeculationCombo> speculate(const McCtx& ctx,
                                                        ConfigId x) const {
    const auto cost_nodes = quadrature_.for_normal(ctx.cost_preds[x].mean,
                                                   ctx.cost_preds[x].stddev);
    std::vector<std::vector<math::QuadraturePoint>> metric_nodes;
    metric_nodes.reserve(constraints_.size());
    for (std::size_t i = 0; i < constraints_.size(); ++i) {
      metric_nodes.push_back(quadrature_.for_normal(
          ctx.metric_preds[i][x].mean, ctx.metric_preds[i][x].stddev));
    }

    const std::size_t vars = 1 + constraints_.size();
    const std::size_t k = quadrature_.size();
    std::vector<std::size_t> index(vars, 0);
    std::vector<SpeculationCombo> combos;
    double kept_mass = 0.0;
    for (;;) {
      SpeculationCombo combo;
      combo.cost =
          std::max(cost_nodes[index[0]].value,
                   0.001 * std::max(ctx.cost_preds[x].mean, 1e-12));
      combo.weight = cost_nodes[index[0]].weight;
      combo.metrics.resize(constraints_.size());
      for (std::size_t i = 0; i < constraints_.size(); ++i) {
        // Physical metrics (energy, latency, ...) are non-negative.
        combo.metrics[i] = std::max(metric_nodes[i][index[i + 1]].value, 0.0);
        combo.weight *= metric_nodes[i][index[i + 1]].weight;
      }
      if (combo.weight >= options_.prune_weight) {
        kept_mass += combo.weight;
        combos.push_back(std::move(combo));
      }
      // Advance the mixed-radix index.
      std::size_t d = 0;
      while (d < vars && ++index[d] == k) {
        index[d] = 0;
        ++d;
      }
      if (d == vars) break;
    }
    if (kept_mass > 0.0) {
      for (auto& c : combos) c.weight /= kept_mass;
    }
    return combos;
  }

  [[nodiscard]] bool combo_feasible(const SpeculationCombo& combo,
                                    ConfigId x) const {
    if (combo.cost > problem_.feasibility_cost_cap(x)) return false;
    for (std::size_t i = 0; i < constraints_.size(); ++i) {
      if (combo.metrics[i] > constraints_[i].threshold(x)) return false;
    }
    return true;
  }

  PathValue explore(const McState& st, const McCtx& ctx, ConfigId x,
                    unsigned l, std::uint64_t path_seed) {
    PathValue v;
    v.reward = eic(ctx, x);
    v.cost = ctx.cost_preds[x].mean;
    if (l == 0) return v;

    const auto combos = speculate(ctx, x);
    for (std::size_t i = 0; i < combos.size(); ++i) {
      const auto& combo = combos[i];
      McState child;
      child.rows = st.rows;
      child.y_cost = st.y_cost;
      child.y_metric = st.y_metric;
      child.sample_feasible = st.sample_feasible;
      child.tested = st.tested;
      child.rows.push_back(x);
      child.y_cost.push_back(combo.cost);
      for (std::size_t c = 0; c < constraints_.size(); ++c) {
        child.y_metric[c].push_back(combo.metrics[c]);
      }
      child.sample_feasible.push_back(combo_feasible(combo, x) ? 1 : 0);
      child.tested[x] = 1;
      child.beta = st.beta - combo.cost;

      McCtx child_ctx;
      build_ctx(child, child_ctx, util::derive_seed(path_seed, i + 1));
      const auto x_next = next_step(child, child_ctx);
      if (!x_next) continue;
      const PathValue sub = explore(child, child_ctx, *x_next, l - 1,
                                    util::derive_seed(path_seed, 131 * i + 7));
      v.cost += combo.weight * sub.cost;
      v.reward += options_.gamma * combo.weight * sub.reward;
    }
    return v;
  }

  [[nodiscard]] const MultiConstraintOptions& options() const noexcept {
    return options_;
  }

 private:
  const OptimizationProblem& problem_;
  const std::vector<ConstraintDef>& constraints_;
  const MultiConstraintOptions& options_;
  const model::FeatureMatrix fm_;
  const math::GaussHermite quadrature_;
  std::unique_ptr<model::Regressor> cost_model_;
  std::vector<std::unique_ptr<model::Regressor>> metric_models_;
};

/// The naive multi-constraint optimizer loop on top of McSimulator: the
/// exact pre-engine `MultiConstraintLynceus::optimize`, kept as the
/// golden-trajectory reference.
class NaiveMultiConstraintLynceus {
 public:
  NaiveMultiConstraintLynceus(std::vector<ConstraintDef> constraints,
                              MultiConstraintOptions options = {})
      : constraints_(std::move(constraints)), options_(std::move(options)) {
    options_.validate();
    for (const auto& c : constraints_) {
      if (!c.threshold) {
        throw std::invalid_argument("ConstraintDef '" + c.name +
                                    "': threshold function is required");
      }
    }
  }

  [[nodiscard]] OptimizerResult optimize(const OptimizationProblem& problem,
                                         JobRunner& runner,
                                         std::uint64_t seed) {
    LoopState st(problem, runner, seed);
    DecisionTimer timer;

    MetricRecordingRunner recorder(runner, constraints_.size());
    st.runner = &recorder;
    st.bootstrap();

    const model::ModelFactory factory =
        options_.model_factory ? options_.model_factory
                               : default_tree_model_factory(*problem.space);
    McSimulator sim(problem, constraints_, options_, factory);

    auto sample_feasible = [&](std::size_t i) {
      if (!st.samples[i].feasible) return false;
      for (const auto& c : constraints_) {
        if (recorder.metrics()[i][c.metric_index] >
            c.threshold(st.samples[i].id)) {
          return false;
        }
      }
      return true;
    };

    McState root;
    McCtx root_ctx;
    std::uint64_t iteration = 0;
    while (!st.untested.empty()) {
      timer.start();
      ++iteration;

      root.rows.clear();
      root.y_cost.clear();
      root.y_metric.assign(constraints_.size(), {});
      root.sample_feasible.clear();
      for (std::size_t i = 0; i < st.samples.size(); ++i) {
        root.rows.push_back(st.samples[i].id);
        root.y_cost.push_back(st.samples[i].cost);
        for (std::size_t c = 0; c < constraints_.size(); ++c) {
          root.y_metric[c].push_back(
              recorder.metrics()[i][constraints_[c].metric_index]);
        }
        root.sample_feasible.push_back(sample_feasible(i) ? 1 : 0);
      }
      root.tested.assign(problem.space->size(), 0);
      for (const auto& s : st.samples) root.tested[s.id] = 1;
      root.beta = st.budget.remaining();

      sim.build_ctx(root, root_ctx, util::derive_seed(seed, iteration));

      // Γ filter + path simulation per viable root.
      std::vector<ConfigId> viable;
      for (std::size_t id = 0; id < problem.space->size(); ++id) {
        if (root.tested[id] != 0) continue;
        if (prob_within(root.beta, root_ctx.cost_preds[id]) >=
            options_.feasibility_quantile) {
          viable.push_back(static_cast<ConfigId>(id));
        }
      }
      if (viable.empty()) {
        timer.stop();
        break;
      }

      double best_ratio = -std::numeric_limits<double>::infinity();
      ConfigId best_id = viable.front();
      for (ConfigId x : viable) {
        const PathValue v = sim.explore(
            root, root_ctx, x, options_.lookahead,
            util::derive_seed(seed, iteration * 1000003ULL + x));
        const double ratio = v.reward / std::max(v.cost, 1e-12);
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_id = x;
        }
      }
      timer.stop();

      st.profile(best_id);
      // Patch the sample's feasibility with the auxiliary constraints so the
      // final recommendation respects all of them.
      st.samples.back().feasible = sample_feasible(st.samples.size() - 1);
    }

    OptimizerResult out = st.finalize();
    timer.write_to(out);
    return out;
  }

 private:
  std::vector<ConstraintDef> constraints_;
  MultiConstraintOptions options_;
};

}  // namespace lynceus::core::reference

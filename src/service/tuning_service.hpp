#pragma once

/// \file tuning_service.hpp
/// Multiplexes many concurrent tuning sessions — one ask/tell stepper per
/// job being tuned — behind a single service object: the process-level
/// building block of the ROADMAP's production tuning service.
///
/// The classic optimize() entrypoint blocks one thread for one job until
/// its budget runs out. Cloud profiling runs take minutes and complete
/// asynchronously, so a server must instead keep N sessions suspended
/// while their runs are in flight and advance whichever session's result
/// arrives next. With the optimizers inverted into ask/tell steppers
/// (core/stepper.hpp) that is exactly what this class does:
///
///   * `open_*()` starts a session (Lynceus, multi-constraint, BO or RND)
///     over a problem, injecting the service's shared resources: one
///     `util::ThreadPool` fanning out every session's root simulations,
///     and optionally one shared `core::RootCache`, so recurrent sessions
///     of the same job warm-start each other's root fits across the whole
///     service. Per-session observers and budgets ride in unchanged
///     through the optimizer options / the problem.
///   * `next_runs()` drains the ready queue: it ask()s every session with
///     no outstanding runs, in deterministic round-robin order (see
///     below), and returns the profiling runs to launch.
///   * `tell()` routes one completed run back to its session; when that
///     session's outstanding batch completes it re-enters the ready
///     queue.
///
/// ## Scheduling determinism
///
/// The ready queue is FIFO: sessions enter in open() order and re-enter
/// when their last outstanding tell() lands, so for a given sequence of
/// open/tell calls, next_runs() output is a pure function of that
/// sequence — no wall-clock, thread or hash-order dependence. Because
/// each stepper applies its tell()ed batches in canonical ask() order
/// (core/stepper.hpp), per-session trajectories are **bit-identical to
/// the session's solo optimize() run** no matter how many sessions are
/// multiplexed or how their completions interleave; the shared root cache
/// cannot perturb this either (exact-key hits return the very doubles a
/// refit would recompute). tests/test_tuning_service.cpp pins both, up to
/// 64 interleaved sessions with out-of-order completions.
///
/// ## Snapshot / restore
///
/// snapshot(session) serializes the session's complete resumable state
/// (the stepper snapshot of core/stepper.hpp). restore_*() reopens it —
/// in this process or another — given the same problem, options and
/// seed; the restored session finishes byte-identically. In-flight runs
/// at snapshot time are part of the state: results already told are
/// carried in the snapshot, still-missing ones are simply re-asked
/// for by next_runs() after restore (the pending batch survives).
///
/// Single-threaded by design: the service is an event-loop core — calls
/// are cheap state transitions (ask() decision work happens inside
/// next_runs()), and callers own the concurrency model around it.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/bo.hpp"
#include "core/constraints.hpp"
#include "core/lookahead.hpp"
#include "core/lynceus.hpp"
#include "core/random_search.hpp"
#include "core/stepper.hpp"
#include "core/types.hpp"
#include "eval/runner.hpp"
#include "util/thread_pool.hpp"

namespace lynceus::service {

using SessionId = std::uint64_t;

/// One profiling run the driver must execute and tell() back.
struct PendingRun {
  SessionId session = 0;
  core::ConfigId config = 0;
};

class TuningService {
 public:
  struct Options {
    /// Workers of the service-owned thread pool shared by every session's
    /// root-simulation fan-out (0 = no pool, decisions run inline).
    std::size_t pool_workers = 0;
    /// Capacity of the service-owned RootCache shared across sessions
    /// (0 = no shared cache). Sessions of one recurrent job reuse each
    /// other's root fits; unrelated jobs sharing one service should keep
    /// this small or off (see the RootCache sharing contract in
    /// core/lookahead.hpp). Trajectories are unaffected either way.
    std::size_t root_cache_capacity = 0;
    /// RootCache::Options::store_models for the shared cache.
    bool cache_store_models = false;
  };

  TuningService();
  explicit TuningService(Options options);

  /// Opens a session around a caller-built stepper. The convenience
  /// open_* overloads below are preferred — they inject the shared pool
  /// and cache; this overload wires in whatever the stepper was built
  /// with. The problem behind the stepper must outlive the session.
  SessionId open(std::unique_ptr<core::OptimizerStepper> stepper);

  /// Lynceus session: `options.pool` and `options.root_cache` are
  /// overridden with the service's shared pool/cache; everything else
  /// (lookahead, screen width, budgets via the problem, per-session
  /// observer) is the caller's.
  SessionId open_lynceus(const core::OptimizationProblem& problem,
                         core::LynceusOptions options, std::uint64_t seed);

  /// Multi-constraint session (same shared-resource injection).
  SessionId open_multi_constraint(const core::OptimizationProblem& problem,
                                  std::vector<core::ConstraintDef> constraints,
                                  core::MultiConstraintOptions options,
                                  std::uint64_t seed);

  SessionId open_bo(const core::OptimizationProblem& problem,
                    core::BoOptions options, std::uint64_t seed);

  SessionId open_random(const core::OptimizationProblem& problem,
                        std::uint64_t seed);

  /// Advances every ready session (deterministic round-robin; see file
  /// comment) and returns the profiling runs to launch. Sessions that
  /// finish during the sweep emit no runs — query finished()/result().
  /// `max_runs` caps the sweep (remaining ready sessions stay queued).
  [[nodiscard]] std::vector<PendingRun> next_runs(
      std::size_t max_runs = SIZE_MAX);

  /// Routes one completed run to its session. Throws std::invalid_argument
  /// for an unknown session or a run the session did not ask for.
  void tell(SessionId session, core::ConfigId config,
            const core::RunResult& result);

  [[nodiscard]] bool finished(SessionId session) const;
  /// The stepper's stop reason (empty while running).
  [[nodiscard]] const std::string& stop_reason(SessionId session) const;
  /// The session's (partial, until finished) optimization result.
  [[nodiscard]] core::OptimizerResult result(SessionId session) const;
  [[nodiscard]] const core::OptimizerStepper& stepper(
      SessionId session) const;

  /// True when no session has runs in flight and none is ready to ask —
  /// i.e. next_runs() would return nothing.
  [[nodiscard]] bool idle() const noexcept {
    return ready_.empty() && in_flight_total_ == 0;
  }
  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size() - closed_count_;
  }

  /// Releases a session's state (finished or abandoned mid-flight). Its
  /// id is never reused.
  void close(SessionId session);

  /// Serializes the session (see core/stepper.hpp "Snapshot format").
  [[nodiscard]] std::string snapshot(SessionId session) const;

  /// Reopens a snapshot into a fresh stepper built with the same problem,
  /// options and seed as the saved session (the restore_* overloads build
  /// it with the shared resources injected, mirroring open_*). The
  /// restored session re-enters the ready queue unless finished.
  SessionId restore(std::unique_ptr<core::OptimizerStepper> stepper,
                    const std::string& snapshot_json);
  SessionId restore_lynceus(const core::OptimizationProblem& problem,
                            core::LynceusOptions options, std::uint64_t seed,
                            const std::string& snapshot_json);

  /// The shared resources, for callers building their own steppers.
  [[nodiscard]] util::ThreadPool* shared_pool() noexcept {
    return pool_ ? pool_.get() : nullptr;
  }
  [[nodiscard]] core::RootCache* shared_cache() noexcept {
    return cache_ ? cache_.get() : nullptr;
  }

 private:
  struct Session {
    std::unique_ptr<core::OptimizerStepper> stepper;
    std::size_t in_flight = 0;  ///< runs handed out, not yet told
    bool queued = false;        ///< in ready_
    bool closed = false;
  };

  Session& session_at(SessionId id);
  [[nodiscard]] const Session& session_at(SessionId id) const;
  SessionId register_session(std::unique_ptr<core::OptimizerStepper> stepper);
  void enqueue_ready(SessionId id);

  Options options_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<core::RootCache> cache_;
  std::vector<Session> sessions_;  ///< index = SessionId
  std::deque<SessionId> ready_;    ///< FIFO of sessions to ask next
  std::size_t in_flight_total_ = 0;
  std::size_t closed_count_ = 0;
};

/// Drains `service` to completion against the simulated-async replay
/// runner: launches everything next_runs() asks for (tagged with the
/// session id), routes each completion — earliest simulated finish first,
/// i.e. out of submission order — back to its session, and returns once
/// the service is idle. The event loop the CLI batch mode, the
/// service benchmarks and the examples all share; a real deployment
/// replaces it with its cluster transport.
void drain(TuningService& service, eval::AsyncTableRunner& runner);

}  // namespace lynceus::service

#pragma once

/// \file tuning_service.hpp
/// Multiplexes many concurrent tuning sessions — one ask/tell stepper per
/// job being tuned — behind a single service object: the process-level
/// building block of the ROADMAP's production tuning service.
///
/// The classic optimize() entrypoint blocks one thread for one job until
/// its budget runs out. Cloud profiling runs take minutes and complete
/// asynchronously, so a server must instead keep N sessions suspended
/// while their runs are in flight and advance whichever session's result
/// arrives next. With the optimizers inverted into ask/tell steppers
/// (core/stepper.hpp) that is exactly what this class does:
///
///   * `open_session(spec)` starts a session from one declarative
///     `SessionSpec` (service/session_spec.hpp: optimizer kind — Lynceus,
///     multi-constraint, BO or RND — problem, knobs, run policy, seed; the
///     legacy `open_*` overloads are one-line shims building a spec),
///     injecting the service's shared resources: one
///     `util::ThreadPool` fanning out every session's root simulations,
///     and optionally one shared `core::RootCache`, so recurrent sessions
///     of the same job warm-start each other's root fits across the whole
///     service. Per-session observers and budgets ride in unchanged
///     through the optimizer options / the problem.
///   * `next_runs()` drains the ready queue: it ask()s every session with
///     no outstanding runs, in deterministic round-robin order (see
///     below), and returns the profiling runs to launch.
///   * `tell()` routes one completed run back to its session; when that
///     session's outstanding batch completes it re-enters the ready
///     queue.
///
/// ## Scheduling determinism
///
/// The ready queue is FIFO: sessions enter in open() order and re-enter
/// when their last outstanding tell() lands, so for a given sequence of
/// open/tell calls, next_runs() output is a pure function of that
/// sequence — no wall-clock, thread or hash-order dependence. Because
/// each stepper applies its tell()ed batches in canonical ask() order
/// (core/stepper.hpp), per-session trajectories are **bit-identical to
/// the session's solo optimize() run** no matter how many sessions are
/// multiplexed or how their completions interleave; the shared root cache
/// cannot perturb this either (exact-key hits return the very doubles a
/// refit would recompute). tests/test_tuning_service.cpp pins both, up to
/// 64 interleaved sessions with out-of-order completions.
///
/// ## Run policy: retries, timeouts, quarantine
///
/// Real profiling runs fail (core::RunOutcome). The service interposes a
/// RunPolicy between the runner and the steppers:
///
///   * a FAILED result is retried up to `max_attempts` total tries, each
///     retry delayed by deterministic exponential backoff in *simulated*
///     time (PendingRun::start_delay — the driver applies it; no
///     wall-clock anywhere). The stepper is only told the failure once
///     attempts are exhausted; an eventual success is told as if the
///     failures never happened.
///   * every launched run carries a timeout (PendingRun::timeout_seconds):
///     the smaller of an absolute cap and `timeout_tmax_factor × Tmax` of
///     the session's problem — the paper's budget-capping instinct: a run
///     that has already exceeded Tmax can never be feasible, so letting it
///     keep billing the profiling budget buys nothing beyond the censored
///     observation, which the cap itself supplies.
///   * after `quarantine_after` consecutive FAILED results (successes
///     reset the streak; timeouts leave it unchanged), the session is
///     quarantined: its stepper is aborted with stop_reason
///     "runner_failed", queued retries are dropped, and late tell()s for
///     it are silently ignored so a drain loop reaches idle.
///
/// Retry attempt numbers are per (session, config) and monotone: the
/// fault-injection contract (eval/runner.hpp) keys fault draws by
/// (config, attempt), so a retried attempt gets fresh draws while replay
/// of the whole schedule stays byte-deterministic.
///
/// ## Snapshot / restore and crash safety
///
/// snapshot(session) serializes the session's complete resumable state
/// (the stepper snapshot of core/stepper.hpp). restore_*() reopens it —
/// in this process or another — given the same problem, options and
/// seed; the restored session finishes byte-identically. In-flight runs
/// at snapshot time are part of the state: results already told are
/// carried in the snapshot, still-missing ones are simply re-asked
/// for by next_runs() after restore (the pending batch survives).
///
/// snapshot_session(session) wraps the stepper snapshot together with the
/// run-policy state (attempt counters, failure streak, queued retries,
/// quarantine flag) in a "lynceus-service-session" JSON envelope;
/// restore() accepts either format and re-schedules any saved retries.
/// With Options::journal set, the service auto-snapshots a session at
/// open/restore and after every tell() — a crashed process restores every
/// session from its last journal entry and, because per-session
/// trajectories are interleaving-independent and fault draws are keyed by
/// (config, attempt), finishes each one byte-identically to the
/// uninterrupted run (the crash-recovery drill in tests/test_faults.cpp).
///
/// ## Throughput mode (opt-in, Options::throughput_workers > 0)
///
/// The FIFO loop above advances sessions round-robin from one thread: at
/// 64 sessions every core but one idles. run_throughput() inverts that —
/// a pool of `throughput_workers` threads pulls *whole session steps*
/// (apply completed results, ask, submit the next batch) off a lock-free
/// MPMC run queue (util/mpmc_queue.hpp), completions flow back through an
/// eval::AsyncCompletionPump delivery thread, and 64+ sessions advance
/// concurrently. The scheduling contract:
///
///   * **Per-session trajectories are bit-pinned.** A session's state is
///     owned exclusively by whichever worker holds its queue task (at most
///     one task per session exists; the per-slot mutex only hands the
///     completed wave over from the delivery thread). Completions are
///     buffered per session and applied in canonical ask() order once the
///     whole outstanding wave has resolved — so each session's trajectory
///     is byte-identical to its solo FIFO run, for any worker count,
///     including under fault injection (fault draws are keyed by
///     (config, attempt), interleaving-independent).
///   * **Cross-session interleaving is NOT pinned.** Which session's wave
///     completes first, runner submission order, simulated finish times
///     and total simulated duration all vary run to run. Anything derived
///     from global ordering (e.g. AsyncTableRunner::now()) is
///     nondeterministic in this mode.
///   * **Quarantine is wave-canonical.** The failure streak is updated in
///     canonical ask order at each wave boundary, not in per-arrival
///     simulated-time order as the FIFO loop does — deterministic for a
///     given mode, but a streak that FIFO mode trips mid-wave can resolve
///     differently here. Sessions that quarantine under fail-everything
///     faults do so identically in both modes; the cross-mode
///     trajectory-identity suites pin the no-quarantine and
///     always-quarantine cases.
///   * **Journal semantics.** With Options::journal set, sessions are
///     journaled once per applied wave (after its tells) instead of after
///     every tell, and the callback is invoked from worker threads — it
///     must be thread-safe (per-session ordering is still serial). A
///     restored envelope replays byte-identically; the only state not
///     carried is the backoff start_delay of a not-yet-relaunched retry
///     (simulated-time scheduling only — attempt numbers, and hence fault
///     draws, are preserved).
///   * **Exclusions.** Throughput mode requires the shared RootCache off
///     (root_cache_capacity == 0; its LRU mutation order is not
///     order-insensitive) and the intra-decision pool off
///     (pool_workers == 0; session-level parallelism replaces it) — the
///     constructor enforces both. Do not call other service methods while
///     run_throughput() is running.
///
/// Single-threaded by design (throughput mode aside): the service is an
/// event-loop core — calls are cheap state transitions (ask() decision
/// work happens inside next_runs()), and callers own the concurrency
/// model around it.

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bo.hpp"
#include "core/constraints.hpp"
#include "core/lookahead.hpp"
#include "core/lynceus.hpp"
#include "core/random_search.hpp"
#include "core/stepper.hpp"
#include "core/types.hpp"
#include "eval/runner.hpp"
#include "service/session_spec.hpp"
#include "util/thread_pool.hpp"

namespace lynceus::service {

using SessionId = std::uint64_t;

/// One profiling run the driver must execute and tell() back. The policy
/// fields map 1:1 onto eval::AsyncTableRunner::SubmitOptions; drivers with
/// no fault/timeout support may ignore them (the defaults are inert).
struct PendingRun {
  SessionId session = 0;
  core::ConfigId config = 0;
  /// Attempt number for this (session, config): 0 for a first try,
  /// incremented per retry. Feed to the fault-injection layer.
  std::uint64_t attempt = 0;
  /// Kill the run at this cap (kTimedOut); +infinity = no cap.
  double timeout_seconds = std::numeric_limits<double>::infinity();
  /// Retry backoff: start the run this many simulated seconds late.
  double start_delay = 0.0;
};

// RunPolicy (the failure-handling policy; see the "Run policy" section of
// the file comment) now lives in service/session_spec.hpp so a SessionSpec
// can carry a per-session policy across the wire.

class TuningService {
 public:
  struct Options {
    /// Workers of the service-owned thread pool shared by every session's
    /// root-simulation fan-out (0 = no pool, decisions run inline).
    std::size_t pool_workers = 0;
    /// Capacity of the service-owned RootCache shared across sessions
    /// (0 = no shared cache). Sessions of one recurrent job reuse each
    /// other's root fits; unrelated jobs sharing one service should keep
    /// this small or off (see the RootCache sharing contract in
    /// core/lookahead.hpp). Trajectories are unaffected either way.
    std::size_t root_cache_capacity = 0;
    /// RootCache::Options::store_models for the shared cache.
    bool cache_store_models = false;
    /// Workers of the throughput-mode scheduler (see "Throughput mode" in
    /// the file comment): 0 = FIFO event-loop service (the default,
    /// deterministic across sessions); > 0 enables run_throughput() with
    /// that many session-step workers. Mutually exclusive with
    /// pool_workers and root_cache_capacity (the constructor throws).
    std::size_t throughput_workers = 0;
    /// Failure-handling policy applied to every session whose SessionSpec
    /// does not carry its own (default: inert).
    RunPolicy run_policy;
    /// Crash-safety journal: when set, invoked with (session id,
    /// snapshot_session(id)) at open/restore and after every tell() —
    /// persist the string; restore() of the latest entry per session
    /// resumes the service byte-identically after a crash. The callback
    /// must not call back into the service.
    std::function<void(SessionId, const std::string&)> journal;
  };

  TuningService();
  explicit TuningService(Options options);

  /// THE session entrypoint: opens a session described by one declarative
  /// SessionSpec (service/session_spec.hpp) — optimizer kind, problem,
  /// knobs, optional per-session RunPolicy, seed. The service injects its
  /// shared pool/cache into the stepper; `spec.problem` must be set (and
  /// outlive the session) — callers holding only a ProblemRef resolve it
  /// first (the network server does this via its workload registry). The
  /// CLI, the examples, the wire protocol and the legacy overloads below
  /// all funnel through here.
  SessionId open_session(const SessionSpec& spec);

  /// Reopens a snapshot — either a bare stepper snapshot or a
  /// snapshot_session() envelope — into a fresh session built from `spec`
  /// (which must describe the saved session: same optimizer, problem,
  /// knobs and seed). The restored session finishes byte-identically.
  SessionId restore_session(const SessionSpec& spec,
                            const std::string& snapshot_json);

  /// Opens a session around a caller-built stepper (open_session is
  /// preferred — it injects the shared pool and cache; this overload wires
  /// in whatever the stepper was built with). The problem behind the
  /// stepper must outlive the session.
  SessionId open(std::unique_ptr<core::OptimizerStepper> stepper);

  /// Legacy per-optimizer overloads: one-line shims building a
  /// SessionSpec for open_session(). Kept so pre-redesign call sites
  /// compile unchanged; new code should construct the spec directly.
  SessionId open_lynceus(const core::OptimizationProblem& problem,
                         core::LynceusOptions options, std::uint64_t seed);

  SessionId open_multi_constraint(const core::OptimizationProblem& problem,
                                  std::vector<core::ConstraintDef> constraints,
                                  core::MultiConstraintOptions options,
                                  std::uint64_t seed);

  SessionId open_bo(const core::OptimizationProblem& problem,
                    core::BoOptions options, std::uint64_t seed);

  SessionId open_random(const core::OptimizationProblem& problem,
                        std::uint64_t seed);

  /// Advances every ready session (deterministic round-robin; see file
  /// comment) and returns the profiling runs to launch. Sessions that
  /// finish during the sweep emit no runs — query finished()/result().
  /// `max_runs` caps the sweep (remaining ready sessions stay queued).
  [[nodiscard]] std::vector<PendingRun> next_runs(
      std::size_t max_runs = SIZE_MAX);

  /// Routes one completed run to its session, applying the run policy
  /// (retry scheduling, failure streaks, quarantine) first. Throws
  /// std::invalid_argument for an unknown session or a run the session did
  /// not ask for — with the strong exception guarantee: a throwing tell()
  /// leaves the service state untouched. Tells for a quarantined session
  /// are silently dropped (late completions of in-flight runs).
  void tell(SessionId session, core::ConfigId config,
            const core::RunResult& result);

  /// True when the session was quarantined by the run policy (its stepper
  /// reports stop_reason "runner_failed").
  [[nodiscard]] bool quarantined(SessionId session) const;
  /// Every open session currently quarantined, in id order.
  [[nodiscard]] std::vector<SessionId> quarantined_sessions() const;

  [[nodiscard]] bool finished(SessionId session) const;
  /// The stepper's stop reason (empty while running).
  [[nodiscard]] const std::string& stop_reason(SessionId session) const;
  /// The session's (partial, until finished) optimization result.
  [[nodiscard]] core::OptimizerResult result(SessionId session) const;
  [[nodiscard]] const core::OptimizerStepper& stepper(
      SessionId session) const;

  /// True when no session has runs in flight and none is ready to ask —
  /// i.e. next_runs() would return nothing.
  [[nodiscard]] bool idle() const noexcept {
    return ready_.empty() && in_flight_total_ == 0;
  }
  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size() - closed_count_;
  }

  /// Releases a session's state (finished or abandoned mid-flight). Its
  /// id is never reused.
  void close(SessionId session);

  /// Serializes the session (see core/stepper.hpp "Snapshot format").
  [[nodiscard]] std::string snapshot(SessionId session) const;

  /// Serializes the session *including its run-policy state* (attempt
  /// counters, failure streak, queued retries, quarantine flag) in the
  /// "lynceus-service-session" envelope — what the journal emits.
  [[nodiscard]] std::string snapshot_session(SessionId session) const;

  /// Reopens a snapshot into a caller-built stepper (restore_session is
  /// preferred). Accepts both a bare stepper snapshot and a
  /// snapshot_session() envelope (the latter also re-schedules queued
  /// retries and restores the policy state). The restored session
  /// re-enters the ready queue unless finished.
  SessionId restore(std::unique_ptr<core::OptimizerStepper> stepper,
                    const std::string& snapshot_json);
  /// Legacy shim over restore_session(), mirroring open_lynceus.
  SessionId restore_lynceus(const core::OptimizationProblem& problem,
                            core::LynceusOptions options, std::uint64_t seed,
                            const std::string& snapshot_json);

  /// Drives every open session to completion against `runner` with the
  /// worker pool described under "Throughput mode" in the file comment
  /// (requires Options::throughput_workers > 0; throws std::logic_error
  /// otherwise). Returns once every session is finished or quarantined —
  /// or, mirroring drain(), once only forever-hung runs remain, leaving
  /// those sessions unfinished with their runs counted in flight.
  /// Restored sessions are picked up mid-batch (queued retries are
  /// relaunched with their saved attempt numbers). The runner must be
  /// untouched by other threads for the duration of the call.
  void run_throughput(eval::AsyncTableRunner& runner);

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// The shared resources, for callers building their own steppers.
  [[nodiscard]] util::ThreadPool* shared_pool() noexcept {
    return pool_ ? pool_.get() : nullptr;
  }
  [[nodiscard]] core::RootCache* shared_cache() noexcept {
    return cache_ ? cache_.get() : nullptr;
  }

 private:
  struct Session {
    std::unique_ptr<core::OptimizerStepper> stepper;
    /// Failure-handling policy for THIS session: the spec's own when
    /// open_session() got one, the service-wide Options::run_policy
    /// otherwise. All retry/timeout/quarantine decisions read this.
    RunPolicy policy;
    std::size_t in_flight = 0;  ///< runs handed out, not yet told
    bool queued = false;        ///< in ready_
    bool closed = false;
    bool quarantined = false;   ///< run policy gave up on this session
    /// Results received per config (tell-time increment), so a relaunch
    /// after crash restore reuses the lost in-flight run's attempt number.
    std::unordered_map<core::ConfigId, std::uint64_t> attempts;
    std::size_t consecutive_failures = 0;
    /// Configs with a retry queued in retry_queue_ (still outstanding in
    /// the stepper, so a ready-sweep must not re-emit them).
    std::set<core::ConfigId> retry_pending;
  };

  /// A retry awaiting emission by next_runs().
  struct RetryRun {
    SessionId session = 0;
    core::ConfigId config = 0;
    std::uint64_t attempt = 0;
    double start_delay = 0.0;
  };

  Session& session_at(SessionId id);
  [[nodiscard]] const Session& session_at(SessionId id) const;
  SessionId register_session(std::unique_ptr<core::OptimizerStepper> stepper);
  void enqueue_ready(SessionId id);
  [[nodiscard]] double effective_timeout(const Session& s) const;
  void quarantine(SessionId id);
  void journal(SessionId id);

  Options options_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<core::RootCache> cache_;
  std::vector<Session> sessions_;  ///< index = SessionId
  std::deque<SessionId> ready_;    ///< FIFO of sessions to ask next
  std::deque<RetryRun> retry_queue_;  ///< retries to emit, FIFO
  std::size_t in_flight_total_ = 0;
  std::size_t closed_count_ = 0;
};

/// Drains `service` to completion against the simulated-async replay
/// runner: launches everything next_runs() asks for (tagged with the
/// session id, with the run policy's timeout/attempt/backoff applied),
/// routes each completion — earliest simulated finish first, i.e. out of
/// submission order — back to its session, and returns once the service
/// is idle. Under fault injection this includes failed and timed-out
/// completions; sessions the policy quarantines simply stop emitting runs
/// and the drain still reaches idle. The event loop the CLI batch mode,
/// the service benchmarks and the examples all share; a real deployment
/// replaces it with its cluster transport. With
/// Options::throughput_workers > 0 this dispatches to
/// service.run_throughput(runner) instead, so drivers support both modes
/// transparently.
void drain(TuningService& service, eval::AsyncTableRunner& runner);

}  // namespace lynceus::service

#pragma once

/// \file session_spec.hpp
/// The declarative session surface of the tuning service: one value type,
/// `SessionSpec`, describes everything a session is — optimizer kind,
/// problem, optimizer options, run policy, seed — so the same description
/// can arrive as C++ code (`TuningService::open_session`), as a CLI flag
/// set (`lynceus_tune`), inside a snapshot, or as a length-prefixed JSON
/// frame over TCP (src/net/). The legacy per-optimizer `open_*` overloads
/// are one-line shims over this type: a wire protocol cannot carry a C++
/// overload set, so the spec is the unit the redesigned API speaks.
///
/// ## One codec
///
/// `to_json()` / `from_json()` round-trip every *declarative* field
/// through util/json with bit-exact doubles (JsonWriter::value_exact), so
/// a spec parsed from a wire frame opens a session whose trajectory is
/// byte-identical to the same spec constructed in process — the network
/// determinism contract in src/net/tuning_server.hpp rests on this.
///
/// Three fields are runtime wiring and deliberately do NOT serialize:
///   * `problem` — an in-process pointer. Remote specs carry `problem_ref`
///     (suite / job / budget multiplier) instead, and the server resolves
///     it against its workload registry.
///   * `observer`, `model_factory`, `setup_cost` — process-local hooks.
///     A spec carrying any of them serializes fine (they are simply
///     dropped); a ConstraintSpec carrying a *functional* threshold does
///     not (to_json throws — a closure cannot cross the wire).
///
/// The flat knob set is the union of LynceusOptions /
/// MultiConstraintOptions / BoOptions; kinds ignore knobs they do not
/// have (BO reads only `ei_stop_fraction` + `model_factory`, RND reads
/// nothing but the seed). Defaults mirror the per-optimizer structs,
/// including the `LYNCEUS_INCREMENTAL_REFIT` / `LYNCEUS_BRANCH_PARALLEL`
/// environment toggles and multi_constraint's lookahead default of 1.

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/bo.hpp"
#include "core/constraints.hpp"
#include "core/lynceus.hpp"
#include "core/types.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace lynceus::service {

/// Failure-handling policy applied by the service to a session (see the
/// "Run policy" section of service/tuning_service.hpp). The default
/// policy is inert: no retries, no timeout, no quarantine — behavior is
/// bitwise identical to a policy-less service.
struct RunPolicy {
  /// Total tries per proposed run (>= 1; 1 = no retries). A FAILED result
  /// is retried until this many attempts have been spent, then told to
  /// the stepper as a failure.
  std::size_t max_attempts = 1;
  /// Simulated-seconds delay before the k-th retry:
  /// backoff_base_seconds × backoff_multiplier^(k-1). 0 = immediate.
  double backoff_base_seconds = 0.0;
  double backoff_multiplier = 2.0;
  /// Absolute per-run timeout; +infinity = none.
  double run_timeout_seconds = std::numeric_limits<double>::infinity();
  /// When > 0, additionally cap each run at factor × the session problem's
  /// Tmax (a run past Tmax is infeasible regardless, so the cap only
  /// trades the tail of a doomed run's bill for a censored observation).
  /// The effective timeout is the smaller of both caps.
  double timeout_tmax_factor = 0.0;
  /// Quarantine a session after this many *consecutive* FAILED results
  /// (ok resets the streak, timeouts leave it unchanged); 0 = never.
  std::size_t quarantine_after = 0;

  void validate() const;

  /// JSON codec ("{}" round-trips to the inert default; the non-finite
  /// run_timeout sentinel is encoded by omission).
  void to_json(util::JsonWriter& w) const;
  [[nodiscard]] static RunPolicy from_json(const util::JsonValue& v);
};

/// One auxiliary constraint of a multi_constraint session. The wire form
/// carries a constant threshold; in-process callers may instead install a
/// per-configuration threshold function (which cannot serialize).
struct ConstraintSpec {
  std::string name;
  std::size_t metric_index = 0;
  /// Constant threshold t_i (used when `threshold_fn` is empty).
  double threshold = 0.0;
  /// Optional per-configuration threshold; takes precedence. NOT
  /// serializable — SessionSpec::to_json throws if set.
  std::function<double(core::ConfigId)> threshold_fn;

  [[nodiscard]] core::ConstraintDef def() const;
};

/// Declarative reference to a problem the receiver resolves itself:
/// workload suite ("tf" | "scout" | "cherrypick" | a registered name),
/// job within the suite, and the paper's budget multiple b (budget =
/// b × mean profiling cost). Used instead of SessionSpec::problem when
/// the spec crosses a process boundary.
struct ProblemRef {
  std::string suite;
  std::string job;
  double budget_multiplier = 3.0;

  [[nodiscard]] bool empty() const noexcept {
    return suite.empty() && job.empty();
  }
};

struct SessionSpec {
  /// "lynceus" | "multi_constraint" | "bo" | "random".
  std::string optimizer = "lynceus";
  std::uint64_t seed = 1;

  /// The problem to tune, exactly one of:
  ///   * `problem` — in-process pointer (must outlive the session), or
  ///   * `problem_ref` — declarative reference the opening side resolves.
  const core::OptimizationProblem* problem = nullptr;
  ProblemRef problem_ref;

  // --- Flat optimizer knob set (union of the per-optimizer structs; see
  // --- the file comment for which kinds read which).
  unsigned lookahead = 2;  ///< multi_constraint defaults to 1 (from_json too)
  unsigned gh_points = 3;
  double gamma = 0.9;
  double feasibility_quantile = 0.99;
  unsigned screen_width = 0;
  double ei_stop_fraction = 0.0;
  double prune_weight = 1e-3;  ///< multi_constraint only
  bool incremental_refit = util::env_flag("LYNCEUS_INCREMENTAL_REFIT");
  bool branch_parallel = util::env_flag("LYNCEUS_BRANCH_PARALLEL");
  bool blacklist_failed = true;

  /// multi_constraint only; must be empty for other kinds.
  std::vector<ConstraintSpec> constraints;

  /// Per-session failure policy; empty = inherit the service-wide
  /// Options::run_policy.
  std::optional<RunPolicy> run_policy;

  // --- Runtime wiring (process-local, never serialized).
  core::OptimizerObserver* observer = nullptr;
  model::ModelFactory model_factory;
  core::SetupCostFn setup_cost;

  /// Shim builders used by the legacy open_* overloads: copy every knob of
  /// the per-optimizer struct into a spec (pool/root_cache excluded — the
  /// service injects its shared ones at open).
  [[nodiscard]] static SessionSpec lynceus(
      const core::OptimizationProblem& problem,
      const core::LynceusOptions& options, std::uint64_t seed);
  [[nodiscard]] static SessionSpec multi_constraint(
      const core::OptimizationProblem& problem,
      const std::vector<core::ConstraintDef>& constraints,
      const core::MultiConstraintOptions& options, std::uint64_t seed);
  [[nodiscard]] static SessionSpec bo(const core::OptimizationProblem& problem,
                                      const core::BoOptions& options,
                                      std::uint64_t seed);
  [[nodiscard]] static SessionSpec random(
      const core::OptimizationProblem& problem, std::uint64_t seed);

  /// The per-optimizer option structs this spec denotes (pool/cache left
  /// null — callers inject them). Throws std::invalid_argument when the
  /// spec's kind does not match.
  [[nodiscard]] core::LynceusOptions lynceus_options() const;
  [[nodiscard]] core::MultiConstraintOptions multi_constraint_options() const;
  [[nodiscard]] core::BoOptions bo_options() const;

  /// Builds the session's stepper: resolves the kind, assembles its
  /// options with `pool`/`cache` injected, and calls the optimizer's
  /// make_stepper(problem, seed). Requires `problem` to be set (resolve
  /// `problem_ref` first when the spec came over a process boundary).
  [[nodiscard]] std::unique_ptr<core::OptimizerStepper> make_stepper(
      util::ThreadPool* pool, core::RootCache* cache) const;

  /// Structural validation (kind known, constraints only for
  /// multi_constraint, policy valid, ...). Does not require `problem`.
  void validate() const;

  /// One codec for CLI, snapshots and wire frames; see the file comment
  /// for what does not serialize. Doubles are bit-exact round trips.
  void to_json(util::JsonWriter& w) const;
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static SessionSpec from_json(const util::JsonValue& v);
  [[nodiscard]] static SessionSpec from_json(const std::string& text);
};

}  // namespace lynceus::service

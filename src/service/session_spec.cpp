#include "service/session_spec.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/random_search.hpp"

namespace lynceus::service {

void RunPolicy::validate() const {
  if (max_attempts == 0) {
    throw std::invalid_argument("RunPolicy: max_attempts must be >= 1");
  }
  if (std::isnan(backoff_base_seconds) || backoff_base_seconds < 0.0 ||
      std::isinf(backoff_base_seconds)) {
    throw std::invalid_argument(
        "RunPolicy: backoff base must be finite and non-negative");
  }
  if (std::isnan(backoff_multiplier) || backoff_multiplier < 1.0 ||
      std::isinf(backoff_multiplier)) {
    throw std::invalid_argument(
        "RunPolicy: backoff multiplier must be finite and >= 1");
  }
  if (std::isnan(run_timeout_seconds) || run_timeout_seconds <= 0.0) {
    throw std::invalid_argument("RunPolicy: run timeout must be positive");
  }
  if (std::isnan(timeout_tmax_factor) || timeout_tmax_factor < 0.0 ||
      std::isinf(timeout_tmax_factor)) {
    throw std::invalid_argument(
        "RunPolicy: Tmax timeout factor must be finite and non-negative");
  }
}

void RunPolicy::to_json(util::JsonWriter& w) const {
  w.begin_object();
  w.key("max_attempts").value(static_cast<std::uint64_t>(max_attempts));
  w.key("backoff_base_seconds").value_exact(backoff_base_seconds);
  w.key("backoff_multiplier").value_exact(backoff_multiplier);
  // +infinity (no timeout) cannot ride in a JSON number; absence is the
  // sentinel, mirroring the struct default.
  if (std::isfinite(run_timeout_seconds)) {
    w.key("run_timeout_seconds").value_exact(run_timeout_seconds);
  }
  w.key("timeout_tmax_factor").value_exact(timeout_tmax_factor);
  w.key("quarantine_after")
      .value(static_cast<std::uint64_t>(quarantine_after));
  w.end_object();
}

RunPolicy RunPolicy::from_json(const util::JsonValue& v) {
  if (v.type() != util::JsonValue::Type::Object) {
    throw std::runtime_error("RunPolicy: expected a JSON object");
  }
  RunPolicy p;
  if (const auto* f = v.find("max_attempts")) {
    p.max_attempts = static_cast<std::size_t>(f->as_uint());
  }
  if (const auto* f = v.find("backoff_base_seconds")) {
    p.backoff_base_seconds = f->as_double();
  }
  if (const auto* f = v.find("backoff_multiplier")) {
    p.backoff_multiplier = f->as_double();
  }
  if (const auto* f = v.find("run_timeout_seconds")) {
    p.run_timeout_seconds = f->as_double();
  }
  if (const auto* f = v.find("timeout_tmax_factor")) {
    p.timeout_tmax_factor = f->as_double();
  }
  if (const auto* f = v.find("quarantine_after")) {
    p.quarantine_after = static_cast<std::size_t>(f->as_uint());
  }
  p.validate();
  return p;
}

core::ConstraintDef ConstraintSpec::def() const {
  core::ConstraintDef d;
  d.name = name;
  d.metric_index = metric_index;
  if (threshold_fn) {
    d.threshold = threshold_fn;
  } else {
    const double t = threshold;
    d.threshold = [t](core::ConfigId) { return t; };
  }
  return d;
}

SessionSpec SessionSpec::lynceus(const core::OptimizationProblem& problem,
                                 const core::LynceusOptions& options,
                                 std::uint64_t seed) {
  SessionSpec spec;
  spec.optimizer = "lynceus";
  spec.seed = seed;
  spec.problem = &problem;
  spec.lookahead = options.lookahead;
  spec.gh_points = options.gh_points;
  spec.gamma = options.gamma;
  spec.feasibility_quantile = options.feasibility_quantile;
  spec.screen_width = options.screen_width;
  spec.ei_stop_fraction = options.ei_stop_fraction;
  spec.incremental_refit = options.incremental_refit;
  spec.branch_parallel = options.branch_parallel;
  spec.blacklist_failed = options.blacklist_failed;
  spec.observer = options.observer;
  spec.model_factory = options.model_factory;
  spec.setup_cost = options.setup_cost;
  return spec;
}

SessionSpec SessionSpec::multi_constraint(
    const core::OptimizationProblem& problem,
    const std::vector<core::ConstraintDef>& constraints,
    const core::MultiConstraintOptions& options, std::uint64_t seed) {
  SessionSpec spec;
  spec.optimizer = "multi_constraint";
  spec.seed = seed;
  spec.problem = &problem;
  spec.lookahead = options.lookahead;
  spec.gh_points = options.gh_points;
  spec.gamma = options.gamma;
  spec.feasibility_quantile = options.feasibility_quantile;
  spec.prune_weight = options.prune_weight;
  spec.incremental_refit = options.incremental_refit;
  spec.branch_parallel = options.branch_parallel;
  spec.blacklist_failed = options.blacklist_failed;
  spec.observer = options.observer;
  spec.model_factory = options.model_factory;
  for (const core::ConstraintDef& d : constraints) {
    ConstraintSpec c;
    c.name = d.name;
    c.metric_index = d.metric_index;
    c.threshold_fn = d.threshold;  // opaque; serializes only if replaced
    spec.constraints.push_back(std::move(c));
  }
  return spec;
}

SessionSpec SessionSpec::bo(const core::OptimizationProblem& problem,
                            const core::BoOptions& options,
                            std::uint64_t seed) {
  SessionSpec spec;
  spec.optimizer = "bo";
  spec.seed = seed;
  spec.problem = &problem;
  spec.ei_stop_fraction = options.ei_stop_fraction;
  spec.observer = options.observer;
  spec.model_factory = options.model_factory;
  return spec;
}

SessionSpec SessionSpec::random(const core::OptimizationProblem& problem,
                                std::uint64_t seed) {
  SessionSpec spec;
  spec.optimizer = "random";
  spec.seed = seed;
  spec.problem = &problem;
  return spec;
}

core::LynceusOptions SessionSpec::lynceus_options() const {
  if (optimizer != "lynceus") {
    throw std::invalid_argument(
        "SessionSpec: lynceus_options() on a '" + optimizer + "' spec");
  }
  core::LynceusOptions o;
  o.lookahead = lookahead;
  o.gh_points = gh_points;
  o.gamma = gamma;
  o.feasibility_quantile = feasibility_quantile;
  o.screen_width = screen_width;
  o.ei_stop_fraction = ei_stop_fraction;
  o.incremental_refit = incremental_refit;
  o.branch_parallel = branch_parallel;
  o.blacklist_failed = blacklist_failed;
  o.observer = observer;
  o.model_factory = model_factory;
  o.setup_cost = setup_cost;
  return o;
}

core::MultiConstraintOptions SessionSpec::multi_constraint_options() const {
  if (optimizer != "multi_constraint") {
    throw std::invalid_argument(
        "SessionSpec: multi_constraint_options() on a '" + optimizer +
        "' spec");
  }
  core::MultiConstraintOptions o;
  o.lookahead = lookahead;
  o.gh_points = gh_points;
  o.gamma = gamma;
  o.feasibility_quantile = feasibility_quantile;
  o.prune_weight = prune_weight;
  o.incremental_refit = incremental_refit;
  o.branch_parallel = branch_parallel;
  o.blacklist_failed = blacklist_failed;
  o.observer = observer;
  o.model_factory = model_factory;
  return o;
}

core::BoOptions SessionSpec::bo_options() const {
  if (optimizer != "bo") {
    throw std::invalid_argument("SessionSpec: bo_options() on a '" +
                                optimizer + "' spec");
  }
  core::BoOptions o;
  o.ei_stop_fraction = ei_stop_fraction;
  o.observer = observer;
  o.model_factory = model_factory;
  return o;
}

std::unique_ptr<core::OptimizerStepper> SessionSpec::make_stepper(
    util::ThreadPool* pool, core::RootCache* cache) const {
  validate();
  if (problem == nullptr) {
    throw std::invalid_argument(
        "SessionSpec: no in-process problem — resolve problem_ref before "
        "opening");
  }
  if (optimizer == "lynceus") {
    core::LynceusOptions o = lynceus_options();
    o.pool = pool;
    o.root_cache = cache;
    return core::LynceusOptimizer(std::move(o)).make_stepper(*problem, seed);
  }
  if (optimizer == "multi_constraint") {
    core::MultiConstraintOptions o = multi_constraint_options();
    o.pool = pool;
    o.root_cache = cache;
    std::vector<core::ConstraintDef> defs;
    defs.reserve(constraints.size());
    for (const ConstraintSpec& c : constraints) defs.push_back(c.def());
    return core::MultiConstraintLynceus(std::move(defs), std::move(o))
        .make_stepper(*problem, seed);
  }
  if (optimizer == "bo") {
    return core::BayesianOptimizer(bo_options()).make_stepper(*problem, seed);
  }
  return core::RandomSearch().make_stepper(*problem, seed);
}

void SessionSpec::validate() const {
  if (optimizer != "lynceus" && optimizer != "multi_constraint" &&
      optimizer != "bo" && optimizer != "random") {
    throw std::invalid_argument("SessionSpec: unknown optimizer kind '" +
                                optimizer + "'");
  }
  if (optimizer == "multi_constraint") {
    if (constraints.empty()) {
      throw std::invalid_argument(
          "SessionSpec: multi_constraint requires at least one constraint");
    }
  } else if (!constraints.empty()) {
    throw std::invalid_argument("SessionSpec: constraints are only valid "
                                "for the multi_constraint optimizer");
  }
  for (const ConstraintSpec& c : constraints) {
    if (!c.threshold_fn && !std::isfinite(c.threshold)) {
      throw std::invalid_argument(
          "SessionSpec: constraint '" + c.name +
          "' needs a finite constant threshold or a threshold function");
    }
  }
  if (run_policy.has_value()) run_policy->validate();
}

void SessionSpec::to_json(util::JsonWriter& w) const {
  w.begin_object();
  w.key("format").value("lynceus-session-spec");
  w.key("version").value(1);
  w.key("optimizer").value(optimizer);
  w.key("seed").value(seed);
  if (!problem_ref.empty()) {
    w.key("problem").begin_object();
    w.key("suite").value(problem_ref.suite);
    w.key("job").value(problem_ref.job);
    w.key("b").value_exact(problem_ref.budget_multiplier);
    w.end_object();
  }
  w.key("options").begin_object();
  w.key("lookahead").value(static_cast<std::uint64_t>(lookahead));
  w.key("gh_points").value(static_cast<std::uint64_t>(gh_points));
  w.key("gamma").value_exact(gamma);
  w.key("feasibility_quantile").value_exact(feasibility_quantile);
  w.key("screen_width").value(static_cast<std::uint64_t>(screen_width));
  w.key("ei_stop_fraction").value_exact(ei_stop_fraction);
  w.key("prune_weight").value_exact(prune_weight);
  w.key("incremental_refit").value(incremental_refit);
  w.key("branch_parallel").value(branch_parallel);
  w.key("blacklist_failed").value(blacklist_failed);
  w.end_object();
  if (!constraints.empty()) {
    w.key("constraints").begin_array();
    for (const ConstraintSpec& c : constraints) {
      if (c.threshold_fn) {
        throw std::invalid_argument(
            "SessionSpec: constraint '" + c.name +
            "' holds a threshold function, which cannot serialize — use a "
            "constant threshold for wire/snapshot specs");
      }
      w.begin_object();
      w.key("name").value(c.name);
      w.key("metric_index").value(static_cast<std::uint64_t>(c.metric_index));
      w.key("threshold").value_exact(c.threshold);
      w.end_object();
    }
    w.end_array();
  }
  if (run_policy.has_value()) {
    w.key("run_policy");
    run_policy->to_json(w);
  }
  w.end_object();
}

std::string SessionSpec::to_json() const {
  util::JsonWriter w;
  to_json(w);
  return w.str();
}

SessionSpec SessionSpec::from_json(const util::JsonValue& v) {
  if (v.type() != util::JsonValue::Type::Object) {
    throw std::runtime_error("SessionSpec: expected a JSON object");
  }
  if (const auto* f = v.find("format")) {
    if (f->as_string() != "lynceus-session-spec") {
      throw std::runtime_error("SessionSpec: unknown format '" +
                               f->as_string() + "'");
    }
    if (v.at("version").as_int() != 1) {
      throw std::runtime_error("SessionSpec: unsupported version");
    }
  }
  SessionSpec spec;
  spec.optimizer = v.at("optimizer").as_string();
  // Per-kind default divergence: MultiConstraintOptions defaults LA to 1.
  if (spec.optimizer == "multi_constraint") spec.lookahead = 1;
  spec.seed = v.at("seed").as_uint();
  if (const auto* p = v.find("problem")) {
    spec.problem_ref.suite = p->at("suite").as_string();
    spec.problem_ref.job = p->at("job").as_string();
    if (const auto* b = p->find("b")) {
      spec.problem_ref.budget_multiplier = b->as_double();
    }
  }
  if (const auto* o = v.find("options")) {
    if (const auto* f = o->find("lookahead")) {
      spec.lookahead = static_cast<unsigned>(f->as_uint());
    }
    if (const auto* f = o->find("gh_points")) {
      spec.gh_points = static_cast<unsigned>(f->as_uint());
    }
    if (const auto* f = o->find("gamma")) spec.gamma = f->as_double();
    if (const auto* f = o->find("feasibility_quantile")) {
      spec.feasibility_quantile = f->as_double();
    }
    if (const auto* f = o->find("screen_width")) {
      spec.screen_width = static_cast<unsigned>(f->as_uint());
    }
    if (const auto* f = o->find("ei_stop_fraction")) {
      spec.ei_stop_fraction = f->as_double();
    }
    if (const auto* f = o->find("prune_weight")) {
      spec.prune_weight = f->as_double();
    }
    if (const auto* f = o->find("incremental_refit")) {
      spec.incremental_refit = f->as_bool();
    }
    if (const auto* f = o->find("branch_parallel")) {
      spec.branch_parallel = f->as_bool();
    }
    if (const auto* f = o->find("blacklist_failed")) {
      spec.blacklist_failed = f->as_bool();
    }
  }
  if (const auto* cs = v.find("constraints")) {
    for (const util::JsonValue& c : cs->items()) {
      ConstraintSpec s;
      s.name = c.at("name").as_string();
      s.metric_index = static_cast<std::size_t>(c.at("metric_index").as_uint());
      s.threshold = c.at("threshold").as_double();
      spec.constraints.push_back(std::move(s));
    }
  }
  if (const auto* p = v.find("run_policy")) {
    spec.run_policy = RunPolicy::from_json(*p);
  }
  spec.validate();
  return spec;
}

SessionSpec SessionSpec::from_json(const std::string& text) {
  return from_json(util::parse_json(text));
}

}  // namespace lynceus::service

#include "service/tuning_service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/json.hpp"

namespace lynceus::service {

TuningService::TuningService() : TuningService(Options{}) {}

TuningService::TuningService(Options options) : options_(std::move(options)) {
  options_.run_policy.validate();
  if (options_.throughput_workers > 0) {
    // See "Throughput mode" in the header: the shared cache's LRU mutation
    // order is interleaving-dependent, and intra-decision pool fan-out
    // would oversubscribe the session-step workers.
    if (options_.root_cache_capacity > 0) {
      throw std::invalid_argument(
          "TuningService: throughput_workers requires the shared RootCache "
          "off (root_cache_capacity == 0)");
    }
    if (options_.pool_workers > 0) {
      throw std::invalid_argument(
          "TuningService: throughput_workers and pool_workers are mutually "
          "exclusive (session-level parallelism replaces the decision pool)");
    }
  }
  if (options_.pool_workers > 0) {
    pool_ = std::make_unique<util::ThreadPool>(options_.pool_workers);
  }
  if (options_.root_cache_capacity > 0) {
    core::RootCache::Options copts;
    copts.capacity = options_.root_cache_capacity;
    copts.store_models = options_.cache_store_models;
    cache_ = std::make_unique<core::RootCache>(copts);
  }
}

TuningService::Session& TuningService::session_at(SessionId id) {
  if (id >= sessions_.size() || sessions_[id].closed) {
    throw std::invalid_argument("TuningService: unknown or closed session " +
                                std::to_string(id));
  }
  return sessions_[id];
}

const TuningService::Session& TuningService::session_at(SessionId id) const {
  if (id >= sessions_.size() || sessions_[id].closed) {
    throw std::invalid_argument("TuningService: unknown or closed session " +
                                std::to_string(id));
  }
  return sessions_[id];
}

SessionId TuningService::register_session(
    std::unique_ptr<core::OptimizerStepper> stepper) {
  if (stepper == nullptr) {
    throw std::invalid_argument("TuningService: null stepper");
  }
  Session s;
  s.stepper = std::move(stepper);
  s.policy = options_.run_policy;
  sessions_.push_back(std::move(s));
  return sessions_.size() - 1;
}

void TuningService::enqueue_ready(SessionId id) {
  Session& s = sessions_[id];
  if (s.queued || s.closed || s.stepper->finished()) return;
  ready_.push_back(id);
  s.queued = true;
}

double TuningService::effective_timeout(const Session& s) const {
  const RunPolicy& p = s.policy;
  double t = p.run_timeout_seconds;
  if (p.timeout_tmax_factor > 0.0) {
    t = std::min(t,
                 p.timeout_tmax_factor * s.stepper->problem().tmax_seconds);
  }
  return t;
}

void TuningService::journal(SessionId id) {
  if (options_.journal) options_.journal(id, snapshot_session(id));
}

SessionId TuningService::open(
    std::unique_ptr<core::OptimizerStepper> stepper) {
  const SessionId id = register_session(std::move(stepper));
  enqueue_ready(id);
  journal(id);
  return id;
}

SessionId TuningService::open_session(const SessionSpec& spec) {
  RunPolicy policy = spec.run_policy.value_or(options_.run_policy);
  policy.validate();
  const SessionId id = open(spec.make_stepper(shared_pool(), shared_cache()));
  sessions_[id].policy = policy;
  return id;
}

SessionId TuningService::restore_session(const SessionSpec& spec,
                                         const std::string& snapshot_json) {
  RunPolicy policy = spec.run_policy.value_or(options_.run_policy);
  policy.validate();
  const SessionId id =
      restore(spec.make_stepper(shared_pool(), shared_cache()), snapshot_json);
  sessions_[id].policy = policy;
  return id;
}

SessionId TuningService::open_lynceus(const core::OptimizationProblem& problem,
                                      core::LynceusOptions options,
                                      std::uint64_t seed) {
  return open_session(SessionSpec::lynceus(problem, options, seed));
}

SessionId TuningService::open_multi_constraint(
    const core::OptimizationProblem& problem,
    std::vector<core::ConstraintDef> constraints,
    core::MultiConstraintOptions options, std::uint64_t seed) {
  return open_session(
      SessionSpec::multi_constraint(problem, constraints, options, seed));
}

SessionId TuningService::open_bo(const core::OptimizationProblem& problem,
                                 core::BoOptions options,
                                 std::uint64_t seed) {
  return open_session(SessionSpec::bo(problem, options, seed));
}

SessionId TuningService::open_random(const core::OptimizationProblem& problem,
                                     std::uint64_t seed) {
  return open_session(SessionSpec::random(problem, seed));
}

std::vector<PendingRun> TuningService::next_runs(std::size_t max_runs) {
  std::vector<PendingRun> out;
  // Queued retries first (their runs are already accounted in_flight —
  // the failed attempt never decremented it). The retry_pending flags of
  // the emitted retries are cleared only after the ready sweep below: a
  // session restored mid-batch sits in the ready queue with its retry
  // still queued, and the sweep must keep skipping the retried config or
  // it would be emitted twice.
  std::vector<std::pair<SessionId, core::ConfigId>> emitted_retries;
  while (!retry_queue_.empty() && out.size() < max_runs) {
    const RetryRun r = retry_queue_.front();
    Session& s = sessions_[r.session];
    if (s.closed || s.quarantined) {
      // Defensive: quarantine/close purge the queue eagerly.
      retry_queue_.pop_front();
      continue;
    }
    retry_queue_.pop_front();
    emitted_retries.emplace_back(r.session, r.config);
    PendingRun run;
    run.session = r.session;
    run.config = r.config;
    run.attempt = r.attempt;
    run.timeout_seconds = effective_timeout(s);
    run.start_delay = r.start_delay;
    out.push_back(run);
  }
  // One sweep over the sessions currently ready; sessions that finish emit
  // nothing, sessions that ask emit their batch and wait for tell()s.
  std::size_t remaining = ready_.size();
  while (remaining-- > 0 && out.size() < max_runs) {
    const SessionId id = ready_.front();
    ready_.pop_front();
    Session& s = sessions_[id];
    s.queued = false;
    if (s.closed || s.stepper->finished()) continue;
    const core::StepAction& action = s.stepper->ask();
    if (action.kind == core::StepAction::Kind::Finished) continue;
    // outstanding_configs(), not action.configs: a session restored from a
    // mid-batch snapshot already holds some of the batch's results. Configs
    // whose retry is queued (possible after restoring a journal envelope)
    // are emitted by the retry loop above, not re-launched here — but they
    // still count as in flight.
    const std::vector<core::ConfigId> todo = s.stepper->outstanding_configs();
    const double timeout = effective_timeout(s);
    for (core::ConfigId config : todo) {
      if (s.retry_pending.count(config) != 0) continue;
      PendingRun run;
      run.session = id;
      run.config = config;
      // Tell-time attempt counting: the count equals results received, so
      // a relaunch after crash restore reuses the lost run's attempt
      // number and replays its fault draw.
      const auto it = s.attempts.find(config);
      run.attempt = it == s.attempts.end() ? 0 : it->second;
      run.timeout_seconds = timeout;
      out.push_back(run);
    }
    // Everything outstanding — including retry-pending configs — is now in
    // flight. A freshly opened session entered the sweep with in_flight 0;
    // a session restored mid-batch entered with its outstanding runs
    // already counted, so adjust by the difference.
    in_flight_total_ -= s.in_flight;
    s.in_flight = todo.size();
    in_flight_total_ += s.in_flight;
  }
  for (const auto& [session, config] : emitted_retries) {
    sessions_[session].retry_pending.erase(config);
  }
  return out;
}

void TuningService::tell(SessionId session, core::ConfigId config,
                         const core::RunResult& result) {
  Session& s = session_at(session);
  // Late completion of a run that was in flight when the session was
  // quarantined: dropped, so drain loops reach idle.
  if (s.quarantined) return;
  if (s.in_flight == 0) {
    throw std::invalid_argument(
        "TuningService::tell: session " + std::to_string(session) +
        " has no run in flight");
  }
  // Validate before mutating anything (strong exception guarantee): the
  // config must be an untold batch member whose retry is not still queued.
  if (s.retry_pending.count(config) != 0) {
    throw std::invalid_argument(
        "TuningService::tell: configuration " + std::to_string(config) +
        " of session " + std::to_string(session) +
        " is awaiting its retry, no result is due");
  }
  const std::vector<core::ConfigId> outstanding =
      s.stepper->outstanding_configs();
  if (std::find(outstanding.begin(), outstanding.end(), config) ==
      outstanding.end()) {
    throw std::invalid_argument(
        "TuningService::tell: configuration " + std::to_string(config) +
        " is not an untold outstanding run of session " +
        std::to_string(session));
  }

  const RunPolicy& policy = s.policy;
  const std::uint64_t attempts_used = ++s.attempts[config];
  if (result.failed()) {
    ++s.consecutive_failures;
    if (policy.quarantine_after > 0 &&
        s.consecutive_failures >= policy.quarantine_after) {
      quarantine(session);
      journal(session);
      return;
    }
    if (attempts_used < policy.max_attempts) {
      // Retry instead of telling the stepper: the run stays in flight.
      RetryRun retry;
      retry.session = session;
      retry.config = config;
      retry.attempt = attempts_used;
      retry.start_delay =
          policy.backoff_base_seconds *
          std::pow(policy.backoff_multiplier,
                   static_cast<double>(attempts_used - 1));
      retry_queue_.push_back(retry);
      s.retry_pending.insert(config);
      journal(session);
      return;
    }
    // Attempts exhausted: the stepper records the failure.
  } else if (result.ok()) {
    s.consecutive_failures = 0;
  }
  s.stepper->tell(config, result);
  --s.in_flight;
  --in_flight_total_;
  // The batch is complete once the stepper holds nothing outstanding;
  // the session then re-enters the FIFO ready queue.
  if (s.in_flight == 0) enqueue_ready(session);
  journal(session);
}

void TuningService::quarantine(SessionId id) {
  Session& s = sessions_[id];
  s.stepper->abort("runner_failed");
  s.quarantined = true;
  in_flight_total_ -= s.in_flight;
  s.in_flight = 0;
  s.retry_pending.clear();
  retry_queue_.erase(
      std::remove_if(retry_queue_.begin(), retry_queue_.end(),
                     [id](const RetryRun& r) { return r.session == id; }),
      retry_queue_.end());
}

bool TuningService::quarantined(SessionId session) const {
  return session_at(session).quarantined;
}

std::vector<SessionId> TuningService::quarantined_sessions() const {
  std::vector<SessionId> out;
  for (SessionId id = 0; id < sessions_.size(); ++id) {
    if (!sessions_[id].closed && sessions_[id].quarantined) {
      out.push_back(id);
    }
  }
  return out;
}

bool TuningService::finished(SessionId session) const {
  return session_at(session).stepper->finished();
}

const std::string& TuningService::stop_reason(SessionId session) const {
  return session_at(session).stepper->stop_reason();
}

core::OptimizerResult TuningService::result(SessionId session) const {
  return session_at(session).stepper->result();
}

const core::OptimizerStepper& TuningService::stepper(
    SessionId session) const {
  return *session_at(session).stepper;
}

void TuningService::close(SessionId session) {
  Session& s = session_at(session);
  in_flight_total_ -= s.in_flight;
  s.in_flight = 0;
  s.closed = true;
  s.stepper.reset();
  s.retry_pending.clear();
  retry_queue_.erase(
      std::remove_if(
          retry_queue_.begin(), retry_queue_.end(),
          [session](const RetryRun& r) { return r.session == session; }),
      retry_queue_.end());
  ++closed_count_;
  // A queued entry for a closed session is skipped by next_runs().
}

std::string TuningService::snapshot(SessionId session) const {
  return session_at(session).stepper->snapshot();
}

std::string TuningService::snapshot_session(SessionId session) const {
  const Session& s = session_at(session);
  util::JsonWriter w;
  w.begin_object();
  w.key("format").value("lynceus-service-session");
  w.key("version").value(1);
  w.key("policy").begin_object();
  w.key("consecutive_failures")
      .value(static_cast<std::uint64_t>(s.consecutive_failures));
  w.key("quarantined").value(s.quarantined);
  // The attempts map is unordered; serialize sorted by config so the
  // envelope bytes are deterministic.
  std::vector<std::pair<core::ConfigId, std::uint64_t>> attempts(
      s.attempts.begin(), s.attempts.end());
  std::sort(attempts.begin(), attempts.end());
  w.key("attempts").begin_array();
  for (const auto& [config, count] : attempts) {
    w.begin_object();
    w.key("config").value(static_cast<std::uint64_t>(config));
    w.key("count").value(count);
    w.end_object();
  }
  w.end_array();
  w.key("retries").begin_array();
  for (const RetryRun& r : retry_queue_) {
    if (r.session != session) continue;
    w.begin_object();
    w.key("config").value(static_cast<std::uint64_t>(r.config));
    w.key("attempt").value(r.attempt);
    w.key("delay").value_exact(r.start_delay);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("stepper").value(s.stepper->snapshot());
  w.end_object();
  return w.str();
}

SessionId TuningService::restore(
    std::unique_ptr<core::OptimizerStepper> stepper,
    const std::string& snapshot_json) {
  if (stepper == nullptr) {
    throw std::invalid_argument("TuningService: null stepper");
  }
  const util::JsonValue v = util::parse_json(snapshot_json);
  const util::JsonValue* format = v.find("format");
  if (format != nullptr &&
      format->type() == util::JsonValue::Type::String &&
      format->as_string() == "lynceus-service-session") {
    if (v.at("version").as_int() != 1) {
      throw std::runtime_error(
          "TuningService::restore: unsupported service-session version");
    }
    stepper->restore(v.at("stepper").as_string());
    const SessionId id = register_session(std::move(stepper));
    Session& s = sessions_[id];
    const util::JsonValue& policy = v.at("policy");
    s.consecutive_failures =
        static_cast<std::size_t>(policy.at("consecutive_failures").as_uint());
    s.quarantined = policy.at("quarantined").as_bool();
    for (const util::JsonValue& a : policy.at("attempts").items()) {
      s.attempts[static_cast<core::ConfigId>(a.at("config").as_uint())] =
          a.at("count").as_uint();
    }
    for (const util::JsonValue& r : policy.at("retries").items()) {
      RetryRun retry;
      retry.session = id;
      retry.config = static_cast<core::ConfigId>(r.at("config").as_uint());
      retry.attempt = r.at("attempt").as_uint();
      retry.start_delay = r.at("delay").as_double();
      retry_queue_.push_back(retry);
      s.retry_pending.insert(retry.config);
    }
    // Runs in flight at the crash (retry-pending ones included) are still
    // owed a result: count them so a tell() or a retry emission arriving
    // before the first ready sweep finds consistent accounting. The sweep
    // re-launches the lost ones and keeps the count.
    s.in_flight = s.stepper->outstanding_configs().size();
    in_flight_total_ += s.in_flight;
    enqueue_ready(id);
    journal(id);
    return id;
  }
  stepper->restore(snapshot_json);
  const SessionId id = register_session(std::move(stepper));
  enqueue_ready(id);
  journal(id);
  return id;
}

SessionId TuningService::restore_lynceus(
    const core::OptimizationProblem& problem, core::LynceusOptions options,
    std::uint64_t seed, const std::string& snapshot_json) {
  return restore_session(SessionSpec::lynceus(problem, options, seed),
                         snapshot_json);
}

void drain(TuningService& service, eval::AsyncTableRunner& runner) {
  if (service.options().throughput_workers > 0) {
    service.run_throughput(runner);
    return;
  }
  while (true) {
    for (const PendingRun& run : service.next_runs()) {
      eval::AsyncTableRunner::SubmitOptions opts;
      opts.timeout_seconds = run.timeout_seconds;
      opts.attempt = run.attempt;
      opts.start_delay = run.start_delay;
      runner.submit(run.session, run.config, opts);
    }
    const auto completion = runner.next_completion();
    if (!completion.has_value()) return;
    service.tell(completion->tag, completion->config, completion->result);
  }
}

}  // namespace lynceus::service

#include "service/tuning_service.hpp"

#include <stdexcept>

namespace lynceus::service {

TuningService::TuningService() : TuningService(Options{}) {}

TuningService::TuningService(Options options) : options_(options) {
  if (options_.pool_workers > 0) {
    pool_ = std::make_unique<util::ThreadPool>(options_.pool_workers);
  }
  if (options_.root_cache_capacity > 0) {
    core::RootCache::Options copts;
    copts.capacity = options_.root_cache_capacity;
    copts.store_models = options_.cache_store_models;
    cache_ = std::make_unique<core::RootCache>(copts);
  }
}

TuningService::Session& TuningService::session_at(SessionId id) {
  if (id >= sessions_.size() || sessions_[id].closed) {
    throw std::invalid_argument("TuningService: unknown or closed session " +
                                std::to_string(id));
  }
  return sessions_[id];
}

const TuningService::Session& TuningService::session_at(SessionId id) const {
  if (id >= sessions_.size() || sessions_[id].closed) {
    throw std::invalid_argument("TuningService: unknown or closed session " +
                                std::to_string(id));
  }
  return sessions_[id];
}

SessionId TuningService::register_session(
    std::unique_ptr<core::OptimizerStepper> stepper) {
  if (stepper == nullptr) {
    throw std::invalid_argument("TuningService: null stepper");
  }
  Session s;
  s.stepper = std::move(stepper);
  sessions_.push_back(std::move(s));
  return sessions_.size() - 1;
}

void TuningService::enqueue_ready(SessionId id) {
  Session& s = sessions_[id];
  if (s.queued || s.closed || s.stepper->finished()) return;
  ready_.push_back(id);
  s.queued = true;
}

SessionId TuningService::open(
    std::unique_ptr<core::OptimizerStepper> stepper) {
  const SessionId id = register_session(std::move(stepper));
  enqueue_ready(id);
  return id;
}

SessionId TuningService::open_lynceus(const core::OptimizationProblem& problem,
                                      core::LynceusOptions options,
                                      std::uint64_t seed) {
  options.pool = shared_pool();
  options.root_cache = shared_cache();
  return open(core::LynceusOptimizer(std::move(options))
                  .make_stepper(problem, seed));
}

SessionId TuningService::open_multi_constraint(
    const core::OptimizationProblem& problem,
    std::vector<core::ConstraintDef> constraints,
    core::MultiConstraintOptions options, std::uint64_t seed) {
  options.pool = shared_pool();
  options.root_cache = shared_cache();
  return open(
      core::MultiConstraintLynceus(std::move(constraints), std::move(options))
          .make_stepper(problem, seed));
}

SessionId TuningService::open_bo(const core::OptimizationProblem& problem,
                                 core::BoOptions options,
                                 std::uint64_t seed) {
  return open(
      core::BayesianOptimizer(std::move(options)).make_stepper(problem, seed));
}

SessionId TuningService::open_random(const core::OptimizationProblem& problem,
                                     std::uint64_t seed) {
  return open(core::RandomSearch().make_stepper(problem, seed));
}

std::vector<PendingRun> TuningService::next_runs(std::size_t max_runs) {
  std::vector<PendingRun> out;
  // One sweep over the sessions currently ready; sessions that finish emit
  // nothing, sessions that ask emit their batch and wait for tell()s.
  std::size_t remaining = ready_.size();
  while (remaining-- > 0 && out.size() < max_runs) {
    const SessionId id = ready_.front();
    ready_.pop_front();
    Session& s = sessions_[id];
    s.queued = false;
    if (s.closed || s.stepper->finished()) continue;
    const core::StepAction& action = s.stepper->ask();
    if (action.kind == core::StepAction::Kind::Finished) continue;
    // outstanding_configs(), not action.configs: a session restored from a
    // mid-batch snapshot already holds some of the batch's results.
    const std::vector<core::ConfigId> todo = s.stepper->outstanding_configs();
    for (core::ConfigId config : todo) {
      out.push_back(PendingRun{id, config});
    }
    s.in_flight = todo.size();
    in_flight_total_ += s.in_flight;
  }
  return out;
}

void TuningService::tell(SessionId session, core::ConfigId config,
                         const core::RunResult& result) {
  Session& s = session_at(session);
  if (s.in_flight == 0) {
    throw std::invalid_argument(
        "TuningService::tell: session " + std::to_string(session) +
        " has no run in flight");
  }
  s.stepper->tell(config, result);
  --s.in_flight;
  --in_flight_total_;
  // The batch is complete once the stepper holds nothing outstanding;
  // the session then re-enters the FIFO ready queue.
  if (s.in_flight == 0) enqueue_ready(session);
}

bool TuningService::finished(SessionId session) const {
  return session_at(session).stepper->finished();
}

const std::string& TuningService::stop_reason(SessionId session) const {
  return session_at(session).stepper->stop_reason();
}

core::OptimizerResult TuningService::result(SessionId session) const {
  return session_at(session).stepper->result();
}

const core::OptimizerStepper& TuningService::stepper(
    SessionId session) const {
  return *session_at(session).stepper;
}

void TuningService::close(SessionId session) {
  Session& s = session_at(session);
  in_flight_total_ -= s.in_flight;
  s.in_flight = 0;
  s.closed = true;
  s.stepper.reset();
  ++closed_count_;
  // A queued entry for a closed session is skipped by next_runs().
}

std::string TuningService::snapshot(SessionId session) const {
  return session_at(session).stepper->snapshot();
}

SessionId TuningService::restore(
    std::unique_ptr<core::OptimizerStepper> stepper,
    const std::string& snapshot_json) {
  if (stepper == nullptr) {
    throw std::invalid_argument("TuningService: null stepper");
  }
  stepper->restore(snapshot_json);
  const SessionId id = register_session(std::move(stepper));
  enqueue_ready(id);
  return id;
}

SessionId TuningService::restore_lynceus(
    const core::OptimizationProblem& problem, core::LynceusOptions options,
    std::uint64_t seed, const std::string& snapshot_json) {
  options.pool = shared_pool();
  options.root_cache = shared_cache();
  return restore(
      core::LynceusOptimizer(std::move(options)).make_stepper(problem, seed),
      snapshot_json);
}

void drain(TuningService& service, eval::AsyncTableRunner& runner) {
  while (true) {
    for (const PendingRun& run : service.next_runs()) {
      runner.submit(run.session, run.config);
    }
    const auto completion = runner.next_completion();
    if (!completion.has_value()) return;
    service.tell(completion->tag, completion->config, completion->result);
  }
}

}  // namespace lynceus::service

/// \file throughput.cpp
/// TuningService::run_throughput — the MPMC worker-pool scheduler behind
/// the "Throughput mode" contract in tuning_service.hpp.
///
/// Shape: one lock-free MPMC queue of session ids; a task in the queue
/// means "advance this session" and confers exclusive ownership of its
/// Session state on whichever worker pops it (at most one task per session
/// exists at any moment, so Session needs no lock). The only state shared
/// with the completion-delivery thread is a small per-session Slot — the
/// buffered wave of completed results and the count of runs still awaited
/// — guarded by a per-slot mutex. When the delivery thread resolves a
/// session's last awaited run it re-queues the session; the worker that
/// pops it applies the whole wave in canonical ask order (run policy first
/// — retries, streaks, quarantine — then the stepper tells), journals
/// once, and submits the next batch.
///
/// Lock ordering: the delivery callback runs under the pump lock and
/// takes a slot lock inside it (pump → slot); workers take a slot lock or
/// the pump lock but never one inside the other, so no cycle exists.
/// Queue pushes are lock-free and safe under any of them.
///
/// Termination: an atomic count of unfinished sessions reaches zero, or —
/// when un-capped hangs leave runs outstanding forever — a worker proves
/// the system stalled: no task queued or being processed (tasks_live ==
/// 0) *and* the pump can never deliver again, both observed atomically
/// under the pump lock (AsyncCompletionPump::stalled). Stalled sessions
/// are left unfinished with their hung runs counted in flight, exactly
/// like the FIFO drain().

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "service/tuning_service.hpp"
#include "util/mpmc_queue.hpp"

namespace lynceus::service {

namespace {

/// One run to hand to the pump: a fresh launch (delay 0) or a retry
/// carrying its backoff delay.
struct SubmitSpec {
  core::ConfigId config = 0;
  std::uint64_t attempt = 0;
  double start_delay = 0.0;
};

/// Per-session state shared between the delivery thread and the owning
/// worker. Everything else about a session is touched only by its owner.
struct Slot {
  std::mutex mutex;  ///< guards wave + awaited
  std::vector<std::pair<core::ConfigId, core::RunResult>> wave;
  std::size_t awaited = 0;  ///< submitted runs not yet resolved
  /// Queued retries carried over from restored journal envelopes,
  /// consumed by the session's first advance (single-threaded prologue
  /// fills it; no lock needed).
  std::vector<SubmitSpec> initial_retries;
  bool live = false;  ///< participates in this run
};

}  // namespace

void TuningService::run_throughput(eval::AsyncTableRunner& runner) {
  const std::size_t workers = options_.throughput_workers;
  if (workers == 0) {
    throw std::logic_error(
        "TuningService::run_throughput: Options::throughput_workers is 0");
  }

  // ---- single-threaded prologue: fold FIFO service state into slots ----
  const std::size_t n = sessions_.size();
  std::vector<Slot> slots(n);
  std::size_t live_sessions = 0;
  for (SessionId id = 0; id < n; ++id) {
    Session& s = sessions_[id];
    s.queued = false;
    in_flight_total_ -= s.in_flight;
    s.in_flight = 0;
    if (s.closed || s.quarantined || s.stepper->finished()) continue;
    s.retry_pending.clear();
    slots[id].live = true;
    ++live_sessions;
  }
  ready_.clear();
  // Retries queued by a restored envelope are relaunched by the session's
  // first advance, keeping their saved attempt numbers (and hence fault
  // draws) and backoff delays.
  for (const RetryRun& r : retry_queue_) {
    if (r.session < n && slots[r.session].live) {
      slots[r.session].initial_retries.push_back(
          SubmitSpec{r.config, r.attempt, r.start_delay});
    }
  }
  retry_queue_.clear();
  if (live_sessions == 0) return;

  // At most one task per live session exists at any moment, so this can
  // never fill; the slack keeps the seed loop from ever spinning.
  util::MpmcQueue<SessionId> queue(
      std::max<std::size_t>(live_sessions + workers + 16, 64));
  std::atomic<std::size_t> sessions_remaining{live_sessions};
  /// Tasks queued or currently being advanced: incremented before a push,
  /// decremented after the advance completes, so tasks_live == 0 means no
  /// worker holds any session and nothing is queued.
  std::atomic<std::size_t> tasks_live{0};
  std::atomic<bool> done{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto push_task = [&](SessionId id) {
    util::Backoff backoff;
    while (!queue.try_push(id)) {
      if (done.load(std::memory_order_acquire)) return;
      backoff.spin();
    }
  };

  eval::AsyncCompletionPump pump(
      runner, [&](const eval::AsyncTableRunner::Completion& c) {
        Slot& slot = slots[c.tag];
        std::lock_guard<std::mutex> lk(slot.mutex);
        slot.wave.emplace_back(c.config, c.result);
        if (--slot.awaited == 0) {
          // The wave is complete: hand the session back to the workers.
          tasks_live.fetch_add(1, std::memory_order_relaxed);
          push_task(static_cast<SessionId>(c.tag));
        }
      });

  // Advance one session: apply its completed wave (if any) in canonical
  // ask order, then submit whatever it is owed next. The caller's task
  // confers exclusive ownership of sessions_[id].
  const auto advance = [&](SessionId id) {
    Session& s = sessions_[id];
    Slot& slot = slots[id];
    std::vector<std::pair<core::ConfigId, core::RunResult>> wave;
    {
      // awaited == 0 here, so no delivery can race this handoff.
      std::lock_guard<std::mutex> lk(slot.mutex);
      wave.swap(slot.wave);
    }
    std::vector<SubmitSpec> submits = std::move(slot.initial_retries);
    slot.initial_retries.clear();

    const RunPolicy& policy = s.policy;
    const bool had_wave = !wave.empty();
    if (had_wave) {
      // Canonical-order application: iterate the stepper's outstanding
      // list (ask order), not arrival order — the bit-pinning half of the
      // throughput-mode contract.
      const std::vector<core::ConfigId> canonical =
          s.stepper->outstanding_configs();
      for (core::ConfigId config : canonical) {
        const auto it = std::find_if(
            wave.begin(), wave.end(),
            [config](const std::pair<core::ConfigId, core::RunResult>& e) {
              return e.first == config;
            });
        if (it == wave.end()) continue;
        const core::RunResult& result = it->second;
        const std::uint64_t attempts_used = ++s.attempts[config];
        if (result.failed()) {
          ++s.consecutive_failures;
          if (policy.quarantine_after > 0 &&
              s.consecutive_failures >= policy.quarantine_after) {
            s.stepper->abort("runner_failed");
            s.quarantined = true;
            s.retry_pending.clear();
            break;  // the wave's remaining results drop, like late tells
          }
          if (attempts_used < policy.max_attempts) {
            SubmitSpec retry;
            retry.config = config;
            retry.attempt = attempts_used;
            retry.start_delay =
                policy.backoff_base_seconds *
                std::pow(policy.backoff_multiplier,
                         static_cast<double>(attempts_used - 1));
            submits.push_back(retry);
            continue;  // the run stays owed; the stepper hears nothing yet
          }
          // Attempts exhausted: the stepper records the failure.
        } else if (result.ok()) {
          s.consecutive_failures = 0;
        }
        s.stepper->tell(config, result);
      }
      journal(id);
      if (s.quarantined) {
        sessions_remaining.fetch_sub(1, std::memory_order_relaxed);
        return;
      }
    }

    if (submits.empty()) {
      if (!s.stepper->finished() && s.stepper->outstanding_configs().empty()) {
        (void)s.stepper->ask();
      }
      if (s.stepper->finished()) {
        sessions_remaining.fetch_sub(1, std::memory_order_relaxed);
        return;
      }
      for (core::ConfigId config : s.stepper->outstanding_configs()) {
        SubmitSpec spec;
        spec.config = config;
        // Tell-time attempt counting, as in the FIFO sweep: the count
        // equals results received, so a relaunch after crash restore
        // reuses the lost run's attempt number and replays its fault draw.
        const auto it = s.attempts.find(config);
        spec.attempt = it == s.attempts.end() ? 0 : it->second;
        submits.push_back(spec);
      }
    } else if (!had_wave) {
      // First advance of a session restored mid-batch with queued retries:
      // the rest of the outstanding batch is owed a relaunch too.
      for (core::ConfigId config : s.stepper->outstanding_configs()) {
        const bool retried = std::any_of(
            submits.begin(), submits.end(),
            [config](const SubmitSpec& r) { return r.config == config; });
        if (retried) continue;
        SubmitSpec spec;
        spec.config = config;
        const auto it = s.attempts.find(config);
        spec.attempt = it == s.attempts.end() ? 0 : it->second;
        submits.push_back(spec);
      }
    }
    if (submits.empty()) {
      // Defensive: a stepper that asks nothing yet is not finished would
      // otherwise spin the scheduler forever.
      sessions_remaining.fetch_sub(1, std::memory_order_relaxed);
      return;
    }

    const double timeout = effective_timeout(s);
    {
      // Count the whole batch as awaited *before* any submission: a run
      // may resolve (and deliver) while its batch-mates are still being
      // submitted.
      std::lock_guard<std::mutex> lk(slot.mutex);
      slot.awaited += submits.size();
    }
    for (const SubmitSpec& spec : submits) {
      eval::AsyncTableRunner::SubmitOptions opts;
      opts.timeout_seconds = timeout;
      opts.attempt = spec.attempt;
      opts.start_delay = spec.start_delay;
      pump.submit(id, spec.config, opts);
    }
    // No Session access past this point: the batch's last delivery may
    // already have re-queued the session for another worker.
  };

  const auto worker_loop = [&]() {
    util::Backoff backoff;
    SessionId id = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (queue.try_pop(id)) {
        backoff.reset();
        try {
          advance(id);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lk(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          done.store(true, std::memory_order_release);
        }
        tasks_live.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      if (sessions_remaining.load(std::memory_order_relaxed) == 0) {
        done.store(true, std::memory_order_release);
        break;
      }
      if (tasks_live.load(std::memory_order_relaxed) == 0 &&
          pump.stalled([&] {
            return tasks_live.load(std::memory_order_relaxed) == 0;
          })) {
        // Only forever-hung runs remain: nothing will ever re-queue a
        // session, so give up like the FIFO drain does.
        done.store(true, std::memory_order_release);
        break;
      }
      backoff.spin();
    }
  };

  // Seed one task per live session, then let the pool run.
  for (SessionId id = 0; id < n; ++id) {
    if (!slots[id].live) continue;
    tasks_live.fetch_add(1, std::memory_order_relaxed);
    push_task(id);
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker_loop);
  for (std::thread& t : pool) t.join();
  pump.stop();

  // ---- single-threaded epilogue: restore FIFO-visible bookkeeping ----
  in_flight_total_ = 0;
  for (SessionId id = 0; id < n; ++id) {
    if (!slots[id].live) continue;
    Session& s = sessions_[id];
    // Runs never resolved (hung forever, or abandoned on error) stay
    // counted in flight, mirroring what drain() leaves behind.
    s.in_flight = s.quarantined ? 0 : slots[id].awaited;
    in_flight_total_ += s.in_flight;
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace lynceus::service

#pragma once

/// \file gp.hpp
/// Gaussian-process regressor — the alternative cost model the paper
/// mentions in footnote 1 ("Lynceus can also operate using Gaussian
/// Processes, as done by other BO approaches"). CherryPick itself uses a
/// GP, so this model also serves the faithful-baseline ablation.
///
/// Kernel: squared exponential over min-max-normalized features with a
/// single shared length-scale, plus observation noise:
///   k(x, x') = σf² · exp(−‖x−x'‖² / (2ℓ²)) + σn²·1{x=x'}
/// Targets are standardized internally. ℓ and σn are chosen by maximizing
/// the log marginal likelihood over a small grid — robust, deterministic,
/// and cheap at the training-set sizes BO reaches (tens to low hundreds of
/// samples).

#include <cstdint>
#include <vector>

#include "math/matrix.hpp"
#include "model/regressor.hpp"

namespace lynceus::model {

struct GpOptions {
  /// Length-scale grid (normalized-feature units).
  std::vector<double> lengthscales = {0.1, 0.2, 0.4, 0.8, 1.6};
  /// Noise-variance grid, as fractions of the (standardized) target
  /// variance.
  std::vector<double> noise_fractions = {1e-4, 1e-2, 5e-2};
  /// Jitter added to the kernel diagonal for numerical stability.
  double jitter = 1e-8;
};

class GaussianProcess final : public Regressor {
 public:
  explicit GaussianProcess(GpOptions options = {});

  void fit(const FeatureMatrix& fm, const std::vector<std::uint32_t>& rows,
           const std::vector<double>& y, std::uint64_t seed) override;

  [[nodiscard]] Prediction predict(const FeatureMatrix& fm,
                                   std::uint32_t row) const override;

  void predict_all(const FeatureMatrix& fm,
                   std::vector<Prediction>& out) const override;

  // predict_subset: the GP predicts row-by-row either way, so the
  // Regressor default (a predict() loop, exactly predict_all restricted to
  // the ids) already gives the lookahead engine its O(candidates) path
  // under the footnote-1 GP cost model.

  [[nodiscard]] std::unique_ptr<Regressor> fresh() const override;

  /// Selected hyper-parameters (after fit): length-scale and noise
  /// variance in standardized-target units.
  [[nodiscard]] double lengthscale() const noexcept { return lengthscale_; }
  [[nodiscard]] double noise_variance() const noexcept { return noise_var_; }
  /// Log marginal likelihood of the selected hyper-parameters.
  [[nodiscard]] double log_marginal_likelihood() const noexcept {
    return best_lml_;
  }

 private:
  [[nodiscard]] double kernel(const std::vector<double>& a,
                              const std::vector<double>& b,
                              double lengthscale) const noexcept;

  GpOptions options_;
  bool fitted_ = false;
  double lengthscale_ = 0.5;
  double noise_var_ = 1e-2;
  double best_lml_ = 0.0;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  std::vector<std::vector<double>> train_x_;  // normalized features
  std::vector<double> alpha_;                 // K⁻¹·y (standardized)
  std::unique_ptr<math::Cholesky> chol_;
};

}  // namespace lynceus::model

#include "model/gp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/stats.hpp"

namespace lynceus::model {

GaussianProcess::GaussianProcess(GpOptions options)
    : options_(std::move(options)) {
  if (options_.lengthscales.empty() || options_.noise_fractions.empty()) {
    throw std::invalid_argument("GaussianProcess: empty hyper-parameter grid");
  }
}

double GaussianProcess::kernel(const std::vector<double>& a,
                               const std::vector<double>& b,
                               double lengthscale) const noexcept {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return std::exp(-0.5 * d2 / (lengthscale * lengthscale));
}

void GaussianProcess::fit(const FeatureMatrix& fm,
                          const std::vector<std::uint32_t>& rows,
                          const std::vector<double>& y,
                          std::uint64_t /*seed*/) {
  if (rows.empty() || rows.size() != y.size()) {
    throw std::invalid_argument(
        "GaussianProcess::fit: rows and y must be non-empty and equal-sized");
  }
  const std::size_t n = rows.size();

  // Standardize targets.
  math::RunningStats stats;
  for (double v : y) stats.add(v);
  y_mean_ = stats.mean();
  y_std_ = stats.stddev();
  if (y_std_ <= 0.0) y_std_ = 1.0;
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) ys[i] = (y[i] - y_mean_) / y_std_;

  train_x_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    train_x_[i] = fm.normalized_features(rows[i]);
  }

  // Grid-search hyper-parameters by log marginal likelihood:
  //   lml = −½ yᵀK⁻¹y − ½ log|K| − n/2 log 2π
  best_lml_ = -std::numeric_limits<double>::infinity();
  std::unique_ptr<math::Cholesky> best_chol;
  std::vector<double> best_alpha;
  double best_ls = options_.lengthscales.front();
  double best_noise = options_.noise_fractions.front();

  for (double ls : options_.lengthscales) {
    math::Matrix k_base(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        const double v = kernel(train_x_[i], train_x_[j], ls);
        k_base(i, j) = v;
        k_base(j, i) = v;
      }
    }
    for (double noise_frac : options_.noise_fractions) {
      math::Matrix k = k_base;
      const double noise = noise_frac + options_.jitter;
      for (std::size_t i = 0; i < n; ++i) k(i, i) += noise;
      std::unique_ptr<math::Cholesky> chol;
      try {
        chol = std::make_unique<math::Cholesky>(k);
      } catch (const std::domain_error&) {
        continue;  // numerically unstable grid point; skip
      }
      const auto alpha = chol->solve(ys);
      double fit_term = 0.0;
      for (std::size_t i = 0; i < n; ++i) fit_term += ys[i] * alpha[i];
      const double lml = -0.5 * fit_term - 0.5 * chol->log_determinant() -
                         0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);
      if (lml > best_lml_) {
        best_lml_ = lml;
        best_chol = std::move(chol);
        best_alpha = alpha;
        best_ls = ls;
        best_noise = noise;
      }
    }
  }
  if (!best_chol) {
    throw std::runtime_error(
        "GaussianProcess::fit: no usable hyper-parameter grid point");
  }
  chol_ = std::move(best_chol);
  alpha_ = std::move(best_alpha);
  lengthscale_ = best_ls;
  noise_var_ = best_noise;
  fitted_ = true;
}

Prediction GaussianProcess::predict(const FeatureMatrix& fm,
                                    std::uint32_t row) const {
  if (!fitted_) throw std::logic_error("GaussianProcess::predict: not fitted");
  const auto x = fm.normalized_features(row);
  const std::size_t n = train_x_.size();
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) {
    k_star[i] = kernel(x, train_x_[i], lengthscale_);
  }
  double mu = 0.0;
  for (std::size_t i = 0; i < n; ++i) mu += k_star[i] * alpha_[i];
  // var = k(x,x) − k*ᵀ K⁻¹ k*  computed via the triangular solve
  // v = L⁻¹ k*, var = k(x,x) − ‖v‖².
  const auto v = chol_->solve_lower(k_star);
  double quad = 0.0;
  for (double vi : v) quad += vi * vi;
  const double var = std::max(1e-12, 1.0 + noise_var_ - quad);
  return {y_mean_ + y_std_ * mu, y_std_ * std::sqrt(var)};
}

void GaussianProcess::predict_all(const FeatureMatrix& fm,
                                  std::vector<Prediction>& out) const {
  out.resize(fm.rows());
  for (std::size_t row = 0; row < fm.rows(); ++row) {
    out[row] = predict(fm, static_cast<std::uint32_t>(row));
  }
}

std::unique_ptr<Regressor> GaussianProcess::fresh() const {
  return std::make_unique<GaussianProcess>(options_);
}

}  // namespace lynceus::model

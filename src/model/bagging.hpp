#pragma once

/// \file bagging.hpp
/// Bagging ensemble of randomized regression trees — Lynceus' default cost
/// model (paper §3 & §5.2: "Lynceus and BO use a bagging ensemble of 10
/// random trees to build the job cost model", in the style of SMAC and
/// auto-WEKA [29, 50]).
///
/// Each tree trains on a bootstrap resample of the training set; the
/// ensemble's predictive distribution at x is the Gaussian
/// N(mean of tree outputs, stddev of tree outputs), which is what the
/// constrained-EI acquisition assumes (paper §3, "Regression model").

#include <cstdint>
#include <vector>

#include "model/decision_tree.hpp"
#include "model/regressor.hpp"

namespace lynceus::util {
class ThreadPool;
}

namespace lynceus::model {

/// How the ensemble turns per-tree outputs into a predictive variance.
enum class VarianceMode {
  /// Variance of the tree means (plain bagging spread — the paper's
  /// formulation, §3).
  BetweenTrees,
  /// SMAC-style law of total variance: E[leaf variance] + Var[leaf means].
  /// Adds the within-leaf residual spread, which keeps uncertainty from
  /// collapsing when all trees agree on a noisy region.
  TotalVariance,
};

struct BaggingOptions {
  /// Ensemble size. Paper default: 10.
  unsigned trees = 10;
  TreeOptions tree;
  VarianceMode variance_mode = VarianceMode::BetweenTrees;
  /// Relative floor on the predictive stddev, as a fraction of the
  /// training-target range. A pure tree ensemble predicts zero variance
  /// where all trees agree, which would make EI collapse and the
  /// feasibility probabilities degenerate; a small floor keeps the
  /// Gaussian assumption usable (standard SMAC practice).
  double min_stddev_rel = 1e-6;
  /// Optional parallelism for predict_all()/predict_subset(): the row list
  /// is split into one contiguous chunk per worker and each chunk runs the
  /// full tree sweep independently. Per-row accumulation order is
  /// unchanged, so results are bitwise identical to the sequential path.
  /// Null = sequential (the default; the Lynceus engine already
  /// parallelizes across root candidates). Not owned.
  util::ThreadPool* predict_pool = nullptr;

  /// Weka RandomTree's default feature-subset size for `d` features.
  [[nodiscard]] static unsigned weka_features_per_split(std::size_t d);
};

class BaggingEnsemble final : public Regressor {
 public:
  explicit BaggingEnsemble(BaggingOptions options = {});

  void fit(const FeatureMatrix& fm, const std::vector<std::uint32_t>& rows,
           const std::vector<double>& y, std::uint64_t seed) override;

  [[nodiscard]] Prediction predict(const FeatureMatrix& fm,
                                   std::uint32_t row) const override;

  void predict_all(const FeatureMatrix& fm,
                   std::vector<Prediction>& out) const override;

  /// Batched subset prediction over `ids` (see Regressor::predict_subset).
  /// Uses the same flat-layout batch routes as predict_all restricted to
  /// the given rows; allocation-free after warm-up.
  void predict_subset(const FeatureMatrix& fm,
                      const std::vector<std::uint32_t>& ids,
                      std::vector<Prediction>& out) const override;

  [[nodiscard]] std::unique_ptr<Regressor> fresh() const override;

  /// Deep copy including the fitted trees (trees and options are plain
  /// data, so the copy predicts bitwise identically). Captured incremental
  /// membership is part of the copy, so a clone of an incremental-ready
  /// ensemble is itself incremental-ready.
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override;

  /// --- Incremental refit (Oza–Russell online bagging; the model-layer
  /// --- half of ROADMAP "Incremental ensemble refit").
  ///
  /// enable_incremental() makes subsequent fits capture each tree's
  /// bootstrap membership. append_and_update(sample) then mimics drawing a
  /// fresh bootstrap of the extended training set without refitting: per
  /// tree, the appended sample enters the tree's bootstrap k ~ Poisson(1)
  /// times (the online-bagging limit of Binomial(n, 1/n) resampling) and
  /// the tree updates in place — leaf statistics recomputed, the touched
  /// leaf re-split where the split decision changes. Deterministic given
  /// (fitted state, update_seed): per tree t the draw stream is
  /// Rng(derive_seed(derive_seed(update_seed, kIncrementalStream), t)),
  /// one independent stream per tree, consumed by the Poisson draw first
  /// and the re-split feature subsetting after. Approximate relative to a
  /// from-scratch fit (not bitwise; see the differential test suite), but
  /// repeatable bit-for-bit.
  bool enable_incremental(unsigned reserve_appends) override;
  [[nodiscard]] bool incremental_ready() const override;
  bool append_and_update(const FeatureMatrix& fm, std::uint32_t row,
                         double y, std::uint64_t update_seed) override;
  /// Reads `src` through const state only (trees, floor, target range):
  /// many per-worker destinations may assign from one shared fitted source
  /// concurrently, which the branch-parallel lookahead engines rely on.
  bool assign_fitted(const Regressor& src) override;

  /// Fit-state serialization (see Regressor::save_fit/load_fit): every
  /// tree's node arrays + captured incremental membership, the stddev
  /// floor and the fitted target range, with round-trip number precision.
  /// A load_fit()ed ensemble predicts — and, when membership was
  /// captured, append_and_update()s — bitwise identically to the saved
  /// one. load_fit verifies the structural signature (tree count,
  /// variance mode) and throws std::runtime_error on a mismatch.
  bool save_fit(util::JsonWriter& w) const override;
  bool load_fit(const util::JsonValue& v) override;

  [[nodiscard]] const BaggingOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

 private:
  [[nodiscard]] Prediction finalize(double sum, double sumsq,
                                    double var_sum) const noexcept;

  /// Shared sequential core of predict_all/predict_subset: predicts the
  /// `n` rows `rows[0..n)` (nullptr = identity rows 0..n) into `out[0..n)`
  /// using the scratch slot `s` for the tree walks and accumulators.
  void predict_rows(const FeatureMatrix& fm, const std::uint32_t* rows,
                    std::size_t n, Prediction* out, PredictScratch& s) const;

  /// Grows the scratch slot list to `chunks` entries (slot c serves
  /// predict chunk c; the sequential path is chunk 0).
  void ensure_scratch(std::size_t chunks) const;

  BaggingOptions options_;
  std::vector<DecisionTree> trees_;
  bool fitted_ = false;
  bool inc_enabled_ = false;
  double stddev_floor_ = 0.0;
  // Fitted target range (min/max over the base samples), maintained across
  // incremental appends so stddev_floor_ tracks the from-scratch formula.
  double y_lo_ = 0.0;
  double y_hi_ = 0.0;
  // Scratch reused across fits to avoid per-fit allocation (hot path).
  std::vector<std::uint32_t> boot_rows_;
  std::vector<double> boot_y_;
  // Prediction scratch, owned by the ensemble instead of thread_local
  // (which kept one copy per worker thread alive forever): one slot per
  // predict chunk — slot 0 for the sequential path, one per pool chunk
  // otherwise — bounded by predict_pool->worker_count()+1 and released
  // with the ensemble. Mutable because prediction is logically const. The
  // batch entry points of a single ensemble must not be called
  // concurrently (the engines predict from per-workspace models; the
  // pool's chunks index distinct slots).
  mutable std::vector<PredictScratch> predict_scratch_;
  mutable std::vector<Prediction> subset_full_;
};

}  // namespace lynceus::model

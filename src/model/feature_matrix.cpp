#include <stdexcept>

#include "model/regressor.hpp"

namespace lynceus::model {

FeatureMatrix::FeatureMatrix(const space::ConfigSpace& space)
    : rows_(space.size()), cols_(space.dim_count()) {
  // One extra zeroed entry past the row-major block: codes() documents a
  // tail pad so 16-bit codes can be fetched with 32-bit SIMD gathers.
  codes_.resize(rows_ * cols_ + 1);
  level_counts_.resize(cols_);
  level_values_.resize(cols_);
  level_lo_.resize(cols_);
  level_hi_.resize(cols_);
  for (std::size_t d = 0; d < cols_; ++d) {
    const auto& dim = space.dim(d);
    if (dim.level_count() > 0xFFFF) {
      throw std::invalid_argument(
          "FeatureMatrix: dimension has too many levels");
    }
    level_counts_[d] = static_cast<std::uint16_t>(dim.level_count());
    level_values_[d] = dim.values;
    max_level_count_ = std::max(max_level_count_, level_counts_[d]);
    // Min-max bounds, precomputed once so normalized_features() need not
    // rescan the level list on every call.
    double lo = level_values_[d].front();
    double hi = level_values_[d].front();
    for (double v : level_values_[d]) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    level_lo_[d] = lo;
    level_hi_[d] = hi;
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto& lv = space.levels(static_cast<space::ConfigId>(r));
    for (std::size_t d = 0; d < cols_; ++d) {
      codes_[r * cols_ + d] = static_cast<std::uint16_t>(lv[d]);
    }
  }

  // Level masks for dense batch prediction: mark each row's exact level,
  // then prefix-OR so mask[c] covers code <= c.
  mask_words_ = (rows_ + 63) / 64;
  if (rows_ <= kMaskMaxRows) {
    level_masks_.resize(cols_);
    for (std::size_t d = 0; d < cols_; ++d) {
      auto& masks = level_masks_[d];
      masks.assign(static_cast<std::size_t>(level_counts_[d]) * mask_words_,
                   0);
      for (std::size_t r = 0; r < rows_; ++r) {
        const std::uint16_t c = code(r, d);
        masks[static_cast<std::size_t>(c) * mask_words_ + r / 64] |=
            std::uint64_t{1} << (r % 64);
      }
      for (std::size_t c = 1; c < level_counts_[d]; ++c) {
        for (std::size_t w = 0; w < mask_words_; ++w) {
          masks[c * mask_words_ + w] |= masks[(c - 1) * mask_words_ + w];
        }
      }
    }
  }
}

std::vector<double> FeatureMatrix::normalized_features(std::size_t row) const {
  std::vector<double> out(cols_);
  normalized_features_into(row, out.data());
  return out;
}

void FeatureMatrix::normalized_features_into(std::size_t row,
                                             double* out) const noexcept {
  for (std::size_t d = 0; d < cols_; ++d) {
    const double lo = level_lo_[d];
    const double hi = level_hi_[d];
    const double v = level_values_[d][code(row, d)];
    out[d] = hi > lo ? (v - lo) / (hi - lo) : 0.0;
  }
}

}  // namespace lynceus::model

#include <stdexcept>

#include "model/regressor.hpp"

namespace lynceus::model {

FeatureMatrix::FeatureMatrix(const space::ConfigSpace& space)
    : rows_(space.size()), cols_(space.dim_count()) {
  codes_.resize(rows_ * cols_);
  level_counts_.resize(cols_);
  level_values_.resize(cols_);
  for (std::size_t d = 0; d < cols_; ++d) {
    const auto& dim = space.dim(d);
    if (dim.level_count() > 0xFFFF) {
      throw std::invalid_argument(
          "FeatureMatrix: dimension has too many levels");
    }
    level_counts_[d] = static_cast<std::uint16_t>(dim.level_count());
    level_values_[d] = dim.values;
    max_level_count_ = std::max(max_level_count_, level_counts_[d]);
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto& lv = space.levels(static_cast<space::ConfigId>(r));
    for (std::size_t d = 0; d < cols_; ++d) {
      codes_[r * cols_ + d] = static_cast<std::uint16_t>(lv[d]);
    }
  }
}

std::vector<double> FeatureMatrix::normalized_features(std::size_t row) const {
  std::vector<double> out(cols_);
  for (std::size_t d = 0; d < cols_; ++d) {
    const auto& values = level_values_[d];
    double lo = values.front();
    double hi = values.front();
    for (double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double v = values[code(row, d)];
    out[d] = hi > lo ? (v - lo) / (hi - lo) : 0.0;
  }
  return out;
}

}  // namespace lynceus::model

#pragma once

/// \file regressor.hpp
/// The probabilistic regression interface used by the optimizers, and the
/// discrete feature-matrix representation they train on.
///
/// Bayesian optimization needs, for every candidate configuration, a
/// Gaussian predictive distribution N(µ(x), σ(x)²) of the job's cost
/// (paper §3, "Regression model"). Lynceus' default model is a bagging
/// ensemble of randomized regression trees; a Gaussian process is provided
/// as the alternative the paper mentions in footnote 1.
///
/// Optimizers retrain the model thousands of times per decision while
/// simulating exploration paths, so the representation is optimized for
/// refit speed: configurations are pre-encoded once per space as rows of
/// small integer level codes (`FeatureMatrix`), and a training set is just
/// a span of row indices plus aligned targets.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "space/config_space.hpp"
#include "util/json.hpp"

namespace lynceus::model {

/// Pre-encoded feature rows for every configuration of a space.
///
/// `code(row, col)` is the level index of dimension `col` for configuration
/// `row` — a small integer, which lets the tree learner find splits by
/// counting instead of sorting. `value(row, col)` is the numeric parameter
/// value (used by the GP and for reporting).
class FeatureMatrix {
 public:
  explicit FeatureMatrix(const space::ConfigSpace& space);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] std::uint16_t code(std::size_t row,
                                   std::size_t col) const noexcept {
    return codes_[row * cols_ + col];
  }

  /// Contiguous level codes of one row (`cols()` entries). Lets hot loops
  /// hoist the row offset instead of re-deriving it per column.
  [[nodiscard]] const std::uint16_t* row_codes(std::size_t row) const
      noexcept {
    return codes_.data() + row * cols_;
  }

  /// Raw row-major code array (`rows()*cols()` entries, element
  /// `row*cols()+col`), followed by one zeroed padding entry so 32-bit
  /// SIMD gathers of the final code never read past the allocation. The
  /// trees' level-synchronous batch route indexes this directly.
  [[nodiscard]] const std::uint16_t* codes() const noexcept {
    return codes_.data();
  }

  /// Level count of a column (codes are in [0, level_count(col))).
  [[nodiscard]] std::uint16_t level_count(std::size_t col) const noexcept {
    return level_counts_[col];
  }
  [[nodiscard]] std::uint16_t max_level_count() const noexcept {
    return max_level_count_;
  }

  /// Numeric value of dimension `col` at level `code` (GP features).
  [[nodiscard]] double level_value(std::size_t col,
                                   std::uint16_t code) const {
    return level_values_.at(col).at(code);
  }

  /// Numeric feature vector of a row, each dimension min-max normalized to
  /// [0, 1] (GP input). The per-dimension (lo, hi) bounds are precomputed
  /// once in the constructor.
  [[nodiscard]] std::vector<double> normalized_features(std::size_t row) const;

  /// Allocation-free variant: writes the `cols()` normalized features of
  /// `row` into `out[0..cols())`.
  void normalized_features_into(std::size_t row, double* out) const noexcept;

  /// Number of 64-bit words in a row bitmask (bit r of word r/64 = row r).
  [[nodiscard]] std::size_t mask_words() const noexcept {
    return mask_words_;
  }

  /// Precomputed level mask: bit r set iff `code(r, col) <= code`
  /// (`mask_words()` words), or nullptr when masks are disabled because the
  /// space is too large to precompute them (see kMaskMaxRows). Dense batch
  /// prediction intersects these per split instead of routing rows one by
  /// one.
  [[nodiscard]] const std::uint64_t* level_mask(
      std::size_t col, std::uint16_t code) const noexcept {
    if (level_masks_.empty()) return nullptr;
    return level_masks_[col].data() +
           static_cast<std::size_t>(code) * mask_words_;
  }

  /// Spaces beyond this many rows skip mask precomputation (memory scales
  /// as rows × Σ levels bits) and batch prediction falls back to the
  /// frontier partition.
  static constexpr std::size_t kMaskMaxRows = 1u << 16;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint16_t> codes_;  // row-major
  std::vector<std::uint16_t> level_counts_;
  std::uint16_t max_level_count_ = 0;
  std::vector<std::vector<double>> level_values_;  // per col, per code
  std::vector<double> level_lo_;  // per col: min level value
  std::vector<double> level_hi_;  // per col: max level value
  std::size_t mask_words_ = 0;
  std::vector<std::vector<std::uint64_t>> level_masks_;  // per col
};

struct Prediction {
  double mean = 0.0;
  double stddev = 0.0;
};

/// A regression model producing Gaussian predictive distributions.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on the samples `(fm.row(rows[i]), y[i])`. `rows` and `y` must
  /// have equal, non-zero size. `seed` drives any internal randomization
  /// (bootstrap resampling, feature sub-setting) so that refits are
  /// deterministic.
  virtual void fit(const FeatureMatrix& fm,
                   const std::vector<std::uint32_t>& rows,
                   const std::vector<double>& y, std::uint64_t seed) = 0;

  /// Predictive distribution for one configuration row. Requires fit().
  [[nodiscard]] virtual Prediction predict(const FeatureMatrix& fm,
                                           std::uint32_t row) const = 0;

  /// Predictive distributions for every row of `fm`, written into `out`
  /// (resized as needed). Batch version — much faster than a loop of
  /// predict() for ensembles.
  ///
  /// Batched-prediction contract (shared with predict_subset): for any row
  /// r, the Prediction produced by the batch entry points is *bitwise
  /// identical* to predict(fm, r) — implementations must accumulate
  /// per-tree / per-component contributions in the same order as the
  /// scalar path, so that optimizers can freely mix scalar, full-space and
  /// subset prediction without perturbing trajectories.
  virtual void predict_all(const FeatureMatrix& fm,
                           std::vector<Prediction>& out) const = 0;

  /// Predictive distributions for the rows `ids[i]`, written to `out[i]`
  /// (`out` is resized to `ids.size()`). Semantically equivalent to
  /// predict_all() restricted to `ids` (same bitwise-identical contract);
  /// the point is cost: the lookahead simulation engine calls this with a
  /// shrinking untested-candidate list so a simulated path node costs
  /// O(candidates) instead of O(|space|). The base implementation loops
  /// predict(); ensembles override it with a batched traversal. Ids may
  /// repeat and appear in any order; after warm-up the ensemble overrides
  /// perform no heap allocation.
  virtual void predict_subset(const FeatureMatrix& fm,
                              const std::vector<std::uint32_t>& ids,
                              std::vector<Prediction>& out) const {
    out.resize(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      out[i] = predict(fm, ids[i]);
    }
  }

  /// A fresh, unfitted model with the same hyper-parameters. Used to build
  /// independent "fantasy" models while simulating exploration paths.
  [[nodiscard]] virtual std::unique_ptr<Regressor> fresh() const = 0;

  /// --- Incremental refit (opt-in; see core/lookahead.hpp for the
  /// --- determinism contract the lookahead engines build on top).
  ///
  /// Turns on incremental-update support: subsequent fit() calls capture
  /// whatever per-model state append_and_update() needs (for the bagging
  /// ensemble, each tree's bootstrap membership) and pre-reserve buffers so
  /// that up to `reserve_appends` appends after a fit perform no heap
  /// allocation. Returns false when the model has no incremental path (the
  /// GP); callers must then fall back to from-scratch refits.
  virtual bool enable_incremental(unsigned reserve_appends) {
    (void)reserve_appends;
    return false;
  }

  /// True when the model is fitted with captured incremental state, i.e.
  /// append_and_update() will succeed. A model restored via assign_fitted()
  /// from a source fitted *without* capture reports false.
  [[nodiscard]] virtual bool incremental_ready() const { return false; }

  /// Incrementally refits for one appended training sample
  /// (fm.row(row), y) instead of refitting from scratch. The update is
  /// deterministic given (`fitted state`, `update_seed`) — repeating the
  /// same fit + append sequence reproduces bitwise-identical predictions —
  /// but is an *approximation* of the from-scratch fit on the extended
  /// sample set (statistically equivalent, not bitwise; the differential
  /// test suite pins the agreement tolerance). Returns false (and leaves
  /// the model untouched) when incremental_ready() is false.
  virtual bool append_and_update(const FeatureMatrix& fm, std::uint32_t row,
                                 double y, std::uint64_t update_seed) {
    (void)fm;
    (void)row;
    (void)y;
    (void)update_seed;
    return false;
  }

  /// Copies `src`'s fitted state (including captured incremental state)
  /// into this model, reusing this model's buffers — the allocation-free
  /// alternative to clone() the engines use once per simulated branch.
  /// `src` must be the same concrete type with identical hyper-parameters
  /// (both built by one ModelFactory); returns false when the types do not
  /// match. Predictions after assign_fitted are bitwise identical to
  /// `src`'s. Implementations must only *read* `src`: the branch-parallel
  /// engines assign one shared root model into several per-worker
  /// destinations concurrently (distinct destinations, one immutable
  /// source — see the pooled-determinism contract in core/lookahead.hpp).
  virtual bool assign_fitted(const Regressor& src) {
    (void)src;
    return false;
  }

  /// A deep copy of this model *including its fitted state*, or nullptr
  /// when the implementation does not support snapshotting. The root-level
  /// result cache (core/lookahead.hpp) uses this to retain the fitted root
  /// tree set alongside its predictions, so a future incremental refit can
  /// extend a cached root instead of rebuilding it. The clone's
  /// predictions must be bitwise identical to the original's.
  [[nodiscard]] virtual std::unique_ptr<Regressor> clone() const {
    return nullptr;
  }

  /// --- Fit-state serialization (tuning-session snapshot/restore; the
  /// --- persistent twin of clone(). See core/stepper.hpp for the session
  /// --- snapshot format that embeds this.)
  ///
  /// Writes the complete fitted state — for the bagging ensemble: every
  /// tree's node array plus the captured incremental membership — as one
  /// JSON value into `w` (the caller has positioned the writer where a
  /// value is expected, e.g. after a key). Returns false *without writing
  /// anything* when the model does not support serialization or is not
  /// fitted; the caller then emits its own placeholder.
  virtual bool save_fit(util::JsonWriter& w) const {
    (void)w;
    return false;
  }

  /// Restores a save_fit() state into this model. The model must have
  /// been built with the same hyper-parameters as the saved one (both by
  /// one ModelFactory — the same contract as assign_fitted); the
  /// serialized state carries a structural signature and a mismatch
  /// throws std::runtime_error. After a successful load, predictions —
  /// and incremental appends, where membership was captured — are bitwise
  /// identical to the saved model's. Returns false when the model does
  /// not support serialization.
  virtual bool load_fit(const util::JsonValue& v) {
    (void)v;
    return false;
  }
};

/// Factory used by optimizers to create per-path model instances.
using ModelFactory = std::function<std::unique_ptr<Regressor>()>;

}  // namespace lynceus::model

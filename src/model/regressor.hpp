#pragma once

/// \file regressor.hpp
/// The probabilistic regression interface used by the optimizers, and the
/// discrete feature-matrix representation they train on.
///
/// Bayesian optimization needs, for every candidate configuration, a
/// Gaussian predictive distribution N(µ(x), σ(x)²) of the job's cost
/// (paper §3, "Regression model"). Lynceus' default model is a bagging
/// ensemble of randomized regression trees; a Gaussian process is provided
/// as the alternative the paper mentions in footnote 1.
///
/// Optimizers retrain the model thousands of times per decision while
/// simulating exploration paths, so the representation is optimized for
/// refit speed: configurations are pre-encoded once per space as rows of
/// small integer level codes (`FeatureMatrix`), and a training set is just
/// a span of row indices plus aligned targets.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "space/config_space.hpp"

namespace lynceus::model {

/// Pre-encoded feature rows for every configuration of a space.
///
/// `code(row, col)` is the level index of dimension `col` for configuration
/// `row` — a small integer, which lets the tree learner find splits by
/// counting instead of sorting. `value(row, col)` is the numeric parameter
/// value (used by the GP and for reporting).
class FeatureMatrix {
 public:
  explicit FeatureMatrix(const space::ConfigSpace& space);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] std::uint16_t code(std::size_t row,
                                   std::size_t col) const noexcept {
    return codes_[row * cols_ + col];
  }

  /// Level count of a column (codes are in [0, level_count(col))).
  [[nodiscard]] std::uint16_t level_count(std::size_t col) const noexcept {
    return level_counts_[col];
  }
  [[nodiscard]] std::uint16_t max_level_count() const noexcept {
    return max_level_count_;
  }

  /// Numeric value of dimension `col` at level `code` (GP features).
  [[nodiscard]] double level_value(std::size_t col,
                                   std::uint16_t code) const {
    return level_values_.at(col).at(code);
  }

  /// Numeric feature vector of a row, each dimension min-max normalized to
  /// [0, 1] (GP input).
  [[nodiscard]] std::vector<double> normalized_features(std::size_t row) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint16_t> codes_;  // row-major
  std::vector<std::uint16_t> level_counts_;
  std::uint16_t max_level_count_ = 0;
  std::vector<std::vector<double>> level_values_;  // per col, per code
};

struct Prediction {
  double mean = 0.0;
  double stddev = 0.0;
};

/// A regression model producing Gaussian predictive distributions.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on the samples `(fm.row(rows[i]), y[i])`. `rows` and `y` must
  /// have equal, non-zero size. `seed` drives any internal randomization
  /// (bootstrap resampling, feature sub-setting) so that refits are
  /// deterministic.
  virtual void fit(const FeatureMatrix& fm,
                   const std::vector<std::uint32_t>& rows,
                   const std::vector<double>& y, std::uint64_t seed) = 0;

  /// Predictive distribution for one configuration row. Requires fit().
  [[nodiscard]] virtual Prediction predict(const FeatureMatrix& fm,
                                           std::uint32_t row) const = 0;

  /// Predictive distributions for every row of `fm`, written into `out`
  /// (resized as needed). Batch version — much faster than a loop of
  /// predict() for ensembles.
  virtual void predict_all(const FeatureMatrix& fm,
                           std::vector<Prediction>& out) const = 0;

  /// A fresh, unfitted model with the same hyper-parameters. Used to build
  /// independent "fantasy" models while simulating exploration paths.
  [[nodiscard]] virtual std::unique_ptr<Regressor> fresh() const = 0;
};

/// Factory used by optimizers to create per-path model instances.
using ModelFactory = std::function<std::unique_ptr<Regressor>()>;

}  // namespace lynceus::model

#include "model/bagging.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lynceus::model {

unsigned BaggingOptions::weka_features_per_split(std::size_t d) {
  if (d <= 1) return 1;
  return static_cast<unsigned>(
             std::ceil(std::log2(static_cast<double>(d)))) +
         1;
}

BaggingEnsemble::BaggingEnsemble(BaggingOptions options)
    : options_(options) {
  if (options_.trees == 0) {
    throw std::invalid_argument("BaggingEnsemble: need at least one tree");
  }
  trees_.assign(options_.trees, DecisionTree(options_.tree));
}

void BaggingEnsemble::fit(const FeatureMatrix& fm,
                          const std::vector<std::uint32_t>& rows,
                          const std::vector<double>& y, std::uint64_t seed) {
  if (rows.empty() || rows.size() != y.size()) {
    throw std::invalid_argument(
        "BaggingEnsemble::fit: rows and y must be non-empty and equal-sized");
  }
  const std::size_t n = rows.size();
  util::Rng rng(util::derive_seed(seed, 0xBA661D6));

  double lo = y[0];
  double hi = y[0];
  for (double v : y) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  stddev_floor_ = std::max(hi - lo, std::abs(hi)) * options_.min_stddev_rel;
  if (stddev_floor_ <= 0.0) stddev_floor_ = options_.min_stddev_rel;

  boot_rows_.resize(n);
  boot_y_.resize(n);
  for (auto& tree : trees_) {
    // Bootstrap resample: n draws with replacement.
    for (std::size_t i = 0; i < n; ++i) {
      const auto j = static_cast<std::size_t>(rng.below(n));
      boot_rows_[i] = rows[j];
      boot_y_[i] = y[j];
    }
    tree.fit(fm, boot_rows_, boot_y_, rng);
  }
  fitted_ = true;
}

Prediction BaggingEnsemble::finalize(double sum, double sumsq,
                                     double var_sum) const noexcept {
  const auto b = static_cast<double>(trees_.size());
  const double mean = sum / b;
  double var = 0.0;
  if (trees_.size() > 1) {
    var = std::max(0.0, (sumsq - sum * sum / b) / (b - 1.0));
  }
  if (options_.variance_mode == VarianceMode::TotalVariance) {
    var += var_sum / b;  // law of total variance: + E[within-leaf variance]
  }
  return {mean, std::max(std::sqrt(var), stddev_floor_)};
}

Prediction BaggingEnsemble::predict(const FeatureMatrix& fm,
                                    std::uint32_t row) const {
  if (!fitted_) throw std::logic_error("BaggingEnsemble::predict: not fitted");
  double sum = 0.0;
  double sumsq = 0.0;
  double var_sum = 0.0;
  const bool total = options_.variance_mode == VarianceMode::TotalVariance;
  for (const auto& tree : trees_) {
    if (total) {
      const auto stats = tree.predict_stats(fm, row);
      sum += stats.mean;
      sumsq += stats.mean * stats.mean;
      var_sum += stats.variance;
    } else {
      const double v = tree.predict(fm, row);
      sum += v;
      sumsq += v * v;
    }
  }
  return finalize(sum, sumsq, var_sum);
}

void BaggingEnsemble::predict_all(const FeatureMatrix& fm,
                                  std::vector<Prediction>& out) const {
  if (!fitted_) {
    throw std::logic_error("BaggingEnsemble::predict_all: not fitted");
  }
  const std::size_t m = fm.rows();
  const bool total = options_.variance_mode == VarianceMode::TotalVariance;
  // Accumulate per-row sums tree by tree (keeps each tree's nodes hot in
  // cache across the whole row sweep).
  thread_local std::vector<double> sum;
  thread_local std::vector<double> sumsq;
  thread_local std::vector<double> var_sum;
  sum.assign(m, 0.0);
  sumsq.assign(m, 0.0);
  var_sum.assign(m, 0.0);
  for (const auto& tree : trees_) {
    for (std::size_t row = 0; row < m; ++row) {
      if (total) {
        const auto stats =
            tree.predict_stats(fm, static_cast<std::uint32_t>(row));
        sum[row] += stats.mean;
        sumsq[row] += stats.mean * stats.mean;
        var_sum[row] += stats.variance;
      } else {
        const double v = tree.predict(fm, static_cast<std::uint32_t>(row));
        sum[row] += v;
        sumsq[row] += v * v;
      }
    }
  }
  out.resize(m);
  for (std::size_t row = 0; row < m; ++row) {
    out[row] = finalize(sum[row], sumsq[row], var_sum[row]);
  }
}

std::unique_ptr<Regressor> BaggingEnsemble::fresh() const {
  return std::make_unique<BaggingEnsemble>(options_);
}

}  // namespace lynceus::model

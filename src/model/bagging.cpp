#include "model/bagging.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace lynceus::model {

unsigned BaggingOptions::weka_features_per_split(std::size_t d) {
  if (d <= 1) return 1;
  return static_cast<unsigned>(
             std::ceil(std::log2(static_cast<double>(d)))) +
         1;
}

BaggingEnsemble::BaggingEnsemble(BaggingOptions options)
    : options_(options) {
  if (options_.trees == 0) {
    throw std::invalid_argument("BaggingEnsemble: need at least one tree");
  }
  // Leaf variances are only consumed in TotalVariance mode; skipping them
  // otherwise saves one pass per leaf in every refit.
  TreeOptions tree_opts = options_.tree;
  tree_opts.leaf_variance =
      options_.variance_mode == VarianceMode::TotalVariance;
  trees_.assign(options_.trees, DecisionTree(tree_opts));
  // Pre-size the scratch slot list to its lifetime bound (one slot per
  // predict chunk; see the member comment) so no batch entry point ever
  // grows it after construction — part of the allocation-free steady
  // state the engines assert via the alloc-count hooks.
  predict_scratch_.resize(
      options_.predict_pool != nullptr
          ? options_.predict_pool->worker_count() + 1
          : 1);
}

void BaggingEnsemble::fit(const FeatureMatrix& fm,
                          const std::vector<std::uint32_t>& rows,
                          const std::vector<double>& y, std::uint64_t seed) {
  if (rows.empty() || rows.size() != y.size()) {
    throw std::invalid_argument(
        "BaggingEnsemble::fit: rows and y must be non-empty and equal-sized");
  }
  const std::size_t n = rows.size();
  util::Rng rng(util::derive_seed(seed, 0xBA661D6));

  double lo = y[0];
  double hi = y[0];
  for (double v : y) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  y_lo_ = lo;
  y_hi_ = hi;
  stddev_floor_ = std::max(hi - lo, std::abs(hi)) * options_.min_stddev_rel;
  if (stddev_floor_ <= 0.0) stddev_floor_ = options_.min_stddev_rel;

  boot_rows_.resize(n);
  boot_y_.resize(n);
  for (auto& tree : trees_) {
    // Bootstrap resample: n draws with replacement.
    for (std::size_t i = 0; i < n; ++i) {
      const auto j = static_cast<std::size_t>(rng.below(n));
      boot_rows_[i] = rows[j];
      boot_y_[i] = y[j];
    }
    tree.fit(fm, boot_rows_, boot_y_, rng);
  }
  fitted_ = true;
}

Prediction BaggingEnsemble::finalize(double sum, double sumsq,
                                     double var_sum) const noexcept {
  const auto b = static_cast<double>(trees_.size());
  const double mean = sum / b;
  double var = 0.0;
  if (trees_.size() > 1) {
    var = std::max(0.0, (sumsq - sum * sum / b) / (b - 1.0));
  }
  if (options_.variance_mode == VarianceMode::TotalVariance) {
    var += var_sum / b;  // law of total variance: + E[within-leaf variance]
  }
  return {mean, std::max(std::sqrt(var), stddev_floor_)};
}

Prediction BaggingEnsemble::predict(const FeatureMatrix& fm,
                                    std::uint32_t row) const {
  if (!fitted_) throw std::logic_error("BaggingEnsemble::predict: not fitted");
  double sum = 0.0;
  double sumsq = 0.0;
  double var_sum = 0.0;
  const bool total = options_.variance_mode == VarianceMode::TotalVariance;
  for (const auto& tree : trees_) {
    if (total) {
      const auto stats = tree.predict_stats(fm, row);
      sum += stats.mean;
      sumsq += stats.mean * stats.mean;
      var_sum += stats.variance;
    } else {
      const double v = tree.predict(fm, row);
      sum += v;
      sumsq += v * v;
    }
  }
  return finalize(sum, sumsq, var_sum);
}

void BaggingEnsemble::predict_rows(const FeatureMatrix& fm,
                                   const std::uint32_t* rows, std::size_t n,
                                   Prediction* out, PredictScratch& s) const {
  const bool total = options_.variance_mode == VarianceMode::TotalVariance;
  // Capacity-warm to the space bound, not just this batch: scratch is
  // per-ensemble now, and a workspace model may well see its largest
  // batch only after the engines' warm-up pass. Any in-space batch
  // (n <= rows; engine subsets are duplicate-free) then never allocates.
  const std::size_t cap = std::max(n, fm.rows());
  s.sum.reserve(cap);
  s.sumsq.reserve(cap);
  s.var_sum.reserve(cap);
  // Also warm the id list only predict_all's chunks fill through this
  // slot: which entry point a slot serves first can change between
  // warm-up and steady state.
  s.ids.reserve(cap);
  s.sum.assign(n, 0.0);
  s.sumsq.assign(n, 0.0);
  s.var_sum.assign(n, 0.0);
  // Tree-major sweep, each tree batching the whole row list (level-mask
  // walk or level-sync sweep over the flat layout) so every tree node is
  // visited once instead of once per row. The per-row accumulation order
  // over trees matches the scalar predict() loop, so results are bitwise
  // identical.
  for (const auto& tree : trees_) {
    tree.accumulate_batch(fm, rows, n, s.sum.data(), s.sumsq.data(),
                          total ? s.var_sum.data() : nullptr, &s);
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = finalize(s.sum[i], s.sumsq[i], s.var_sum[i]);
  }
}

void BaggingEnsemble::ensure_scratch(std::size_t chunks) const {
  if (predict_scratch_.size() < chunks) predict_scratch_.resize(chunks);
}

namespace {

/// Number of contiguous chunks predict_all/predict_subset split a batch
/// of `n` rows into (one per pool worker plus the calling thread).
std::size_t chunk_count(util::ThreadPool* pool, std::size_t n) {
  return pool != nullptr ? std::min(n, pool->worker_count() + 1) : 1;
}

/// Splits `[0, n)` into `chunks` near-equal contiguous ranges and runs
/// `body(chunk, begin, end)` for each on the pool. Chunk boundaries depend
/// only on (n, chunks), and rows keep their positions, so parallel results
/// are bitwise identical to sequential ones. Templated so the common
/// pool-less call stays allocation-free (no std::function wrapping).
template <class Body>
void chunked_parallel(util::ThreadPool* pool, std::size_t n,
                      std::size_t chunks, const Body& body) {
  if (chunks <= 1) {
    body(std::size_t{0}, std::size_t{0}, n);
    return;
  }
  util::maybe_parallel_for(pool, chunks, [&](std::size_t c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    if (begin < end) body(c, begin, end);
  });
}

}  // namespace

void BaggingEnsemble::predict_all(const FeatureMatrix& fm,
                                  std::vector<Prediction>& out) const {
  if (!fitted_) {
    throw std::logic_error("BaggingEnsemble::predict_all: not fitted");
  }
  const std::size_t m = fm.rows();
  // Warm the dense-subset gather target before out.resize — in the dense
  // predict_subset route `out` *is* subset_full_, and the first batch call
  // on this ensemble must size it even when that route only gets taken
  // after the engines' warm-up pass.
  subset_full_.reserve(m);
  out.resize(m);
  const std::size_t chunks = chunk_count(options_.predict_pool, m);
  ensure_scratch(chunks);
  chunked_parallel(options_.predict_pool, m, chunks,
                   [&](std::size_t c, std::size_t begin, std::size_t end) {
                     PredictScratch& s = predict_scratch_[c];
                     s.ids.reserve(m);
                     s.ids.resize(end - begin);
                     for (std::size_t i = begin; i < end; ++i) {
                       s.ids[i - begin] = static_cast<std::uint32_t>(i);
                     }
                     predict_rows(fm, begin == 0 && end == m ? nullptr
                                                             : s.ids.data(),
                                  end - begin, out.data() + begin, s);
                   });
}

void BaggingEnsemble::predict_subset(const FeatureMatrix& fm,
                                     const std::vector<std::uint32_t>& ids,
                                     std::vector<Prediction>& out) const {
  if (!fitted_) {
    throw std::logic_error("BaggingEnsemble::predict_subset: not fitted");
  }
  out.resize(ids.size());
  // Route-independent warm (see predict_all): a sparse-subset-first model
  // must not allocate when it later takes the dense route.
  subset_full_.reserve(fm.rows());
  // Dense subsets take the identity (level-mask) walk of the *full* space
  // and gather: per row it is ~2x cheaper than the sparse sweep, so once
  // the subset covers most of the space — typical for the lookahead
  // engines' first levels — predicting everything wins. Per-row results
  // are bitwise identical across all batch entry points (the Regressor
  // contract), so this is purely a routing decision.
  if (2 * ids.size() >= fm.rows()) {
    predict_all(fm, subset_full_);
    for (std::size_t i = 0; i < ids.size(); ++i) out[i] = subset_full_[ids[i]];
    return;
  }
  const std::size_t chunks = chunk_count(options_.predict_pool, ids.size());
  ensure_scratch(chunks);
  chunked_parallel(options_.predict_pool, ids.size(), chunks,
                   [&](std::size_t c, std::size_t begin, std::size_t end) {
                     predict_rows(fm, ids.data() + begin, end - begin,
                                  out.data() + begin, predict_scratch_[c]);
                   });
}

namespace {

/// Stream id separating incremental-update rng draws from every other
/// derive_seed consumer (fit seeds use raw branch seeds; see
/// core/lookahead.hpp "Incremental-refit determinism contract").
constexpr std::uint64_t kIncrementalStream = 0x1C2E5EEDULL;

}  // namespace

bool BaggingEnsemble::enable_incremental(unsigned reserve_appends) {
  inc_enabled_ = true;
  // poisson1() caps at 12 copies per append, so this per-tree reserve is a
  // hard bound — appends after a fit never reallocate.
  const std::size_t per_tree = static_cast<std::size_t>(reserve_appends) * 12;
  for (auto& tree : trees_) tree.set_incremental(true, per_tree);
  return true;
}

bool BaggingEnsemble::incremental_ready() const {
  return fitted_ && inc_enabled_ && trees_.front().has_membership();
}

bool BaggingEnsemble::append_and_update(const FeatureMatrix& fm,
                                        std::uint32_t row, double y,
                                        std::uint64_t update_seed) {
  if (!incremental_ready()) return false;
  // Maintain the target range so the stddev floor tracks what a
  // from-scratch fit of the extended sample set would compute.
  y_lo_ = std::min(y_lo_, y);
  y_hi_ = std::max(y_hi_, y);
  stddev_floor_ =
      std::max(y_hi_ - y_lo_, std::abs(y_hi_)) * options_.min_stddev_rel;
  if (stddev_floor_ <= 0.0) stddev_floor_ = options_.min_stddev_rel;

  const std::uint64_t base = util::derive_seed(update_seed, kIncrementalStream);
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    util::Rng rng(util::derive_seed(base, t));
    const unsigned copies = rng.poisson1();
    for (unsigned c = 0; c < copies; ++c) {
      trees_[t].append_incremental(fm, row, y, rng);
    }
  }
  return true;
}

bool BaggingEnsemble::assign_fitted(const Regressor& src) {
  const auto* other = dynamic_cast<const BaggingEnsemble*>(&src);
  if (other == nullptr || other->trees_.size() != trees_.size()) return false;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    trees_[t].assign_fitted(other->trees_[t]);
  }
  fitted_ = other->fitted_;
  stddev_floor_ = other->stddev_floor_;
  y_lo_ = other->y_lo_;
  y_hi_ = other->y_hi_;
  return true;
}

std::unique_ptr<Regressor> BaggingEnsemble::fresh() const {
  return std::make_unique<BaggingEnsemble>(options_);
}

std::unique_ptr<Regressor> BaggingEnsemble::clone() const {
  return std::make_unique<BaggingEnsemble>(*this);
}

bool BaggingEnsemble::save_fit(util::JsonWriter& w) const {
  if (!fitted_) return false;
  w.begin_object();
  w.key("model").value("bagging");
  w.key("trees").value(static_cast<std::uint64_t>(trees_.size()));
  w.key("total_variance")
      .value(options_.variance_mode == VarianceMode::TotalVariance);
  w.key("inc_enabled").value(inc_enabled_);
  w.key("stddev_floor").value_exact(stddev_floor_);
  w.key("y_lo").value_exact(y_lo_);
  w.key("y_hi").value_exact(y_hi_);
  w.key("tree_states").begin_array();
  for (const DecisionTree& tree : trees_) tree.save_state(w);
  w.end_array();
  w.end_object();
  return true;
}

bool BaggingEnsemble::load_fit(const util::JsonValue& v) {
  if (v.at("model").as_string() != "bagging") {
    throw std::runtime_error(
        "BaggingEnsemble::load_fit: state was saved by a different model");
  }
  if (v.at("trees").as_uint() != trees_.size() ||
      v.at("total_variance").as_bool() !=
          (options_.variance_mode == VarianceMode::TotalVariance)) {
    throw std::runtime_error(
        "BaggingEnsemble::load_fit: structural signature mismatch (load "
        "into an ensemble built by the same ModelFactory)");
  }
  const util::JsonValue& tree_states = v.at("tree_states");
  if (tree_states.size() != trees_.size()) {
    throw std::runtime_error(
        "BaggingEnsemble::load_fit: tree count mismatch");
  }
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    trees_[t].load_state(tree_states.at(t));
  }
  inc_enabled_ = v.at("inc_enabled").as_bool();
  stddev_floor_ = v.at("stddev_floor").as_double();
  y_lo_ = v.at("y_lo").as_double();
  y_hi_ = v.at("y_hi").as_double();
  fitted_ = true;
  return true;
}

}  // namespace lynceus::model

#include "model/decision_tree.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace lynceus::model {

DecisionTree::DecisionTree(TreeOptions options) : options_(options) {}

/// Upper bound on features statted per fused split-scan pass (bounds the
/// scan's stack arrays; wider spaces just take several passes).
static constexpr std::size_t kMaxFeatures = 64;

/// Thin view over the fm/rng and the tree-owned FitScratch buffers (the
/// vectors live in `scratch_` so refits reuse their capacity).
struct DecisionTree::BuildCtx {
  const FeatureMatrix* fm = nullptr;
  util::Rng* rng = nullptr;
  // Parallel arrays, partitioned in place as the tree grows.
  std::vector<std::uint32_t>& idx;
  std::vector<double>& y;
  // Per-(feature, level) scratch for the fused split scan, reused across
  // nodes (sized cols * max_level_count).
  std::vector<std::uint32_t>& cnt;
  std::vector<double>& sum;
  // Feature-subset scratch.
  std::vector<std::uint16_t>& feature_order;

  explicit BuildCtx(FitScratch& s)
      : idx(s.idx), y(s.y), cnt(s.cnt), sum(s.sum),
        feature_order(s.feature_order) {}
};

void DecisionTree::fit(const FeatureMatrix& fm,
                       const std::vector<std::uint32_t>& rows,
                       const std::vector<double>& y, util::Rng& rng) {
  if (rows.empty() || rows.size() != y.size()) {
    throw std::invalid_argument(
        "DecisionTree::fit: rows and y must be non-empty and equal-sized");
  }
  nodes_.clear();
  node_depth_.clear();
  depth_ = 0;
  nodes_.reserve(2 * rows.size());
  if (inc_enabled_) {
    inc_base_ = rows.size();
    reserve_incremental(inc_base_);
  }

  BuildCtx ctx(scratch_);
  ctx.fm = &fm;
  ctx.rng = &rng;
  ctx.idx.assign(rows.begin(), rows.end());
  ctx.y.assign(y.begin(), y.end());
  ctx.cnt.assign(fm.cols() * fm.max_level_count(), 0);
  ctx.sum.assign(fm.cols() * fm.max_level_count(), 0.0);
  ctx.feature_order.resize(fm.cols());
  for (std::size_t d = 0; d < fm.cols(); ++d) {
    ctx.feature_order[d] = static_cast<std::uint16_t>(d);
  }

  build(ctx, 0, ctx.idx.size(), 0);

  if (inc_enabled_) {
    // Capture the membership for append_incremental: the training multiset
    // plus each sample's leaf (the fit's in-place partition destroys the
    // original order, so samples are re-routed — O(n · depth)).
    inc_rows_.assign(rows.begin(), rows.end());
    inc_y_.assign(y.begin(), y.end());
    leaf_of_.resize(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      leaf_of_[i] = find_leaf(fm, rows[i]);
    }
  }
}

void DecisionTree::set_incremental(bool on, std::size_t reserve_extra) {
  inc_enabled_ = on;
  inc_reserve_ = on ? reserve_extra : 0;
  if (!on) {
    inc_rows_.clear();
    inc_y_.clear();
    leaf_of_.clear();
    node_depth_.clear();
  }
}

void DecisionTree::reserve_incremental(std::size_t base_samples) {
  const std::size_t n = base_samples + inc_reserve_;
  // Base fit builds <= 2n-1 nodes; every append may rebuild one leaf's
  // subtree over <= n members (<= 2n-1 fresh nodes, one orphaned slot).
  const std::size_t node_bound = 2 * n * (inc_reserve_ + 1) + inc_reserve_ + 2;
  nodes_.reserve(node_bound);
  node_depth_.reserve(node_bound);
  inc_rows_.reserve(n);
  inc_y_.reserve(n);
  leaf_of_.reserve(n);
  gather_rows_.reserve(n);
  gather_y_.reserve(n);
  scratch_.idx.reserve(n);
  scratch_.y.reserve(n);
}

std::int32_t DecisionTree::find_leaf(const FeatureMatrix& fm,
                                     std::uint32_t row) const noexcept {
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature != kLeaf) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    node = fm.code(row, static_cast<std::size_t>(nd.feature)) <= nd.split_code
               ? nd.left
               : nd.right;
  }
  return node;
}

void DecisionTree::append_incremental(const FeatureMatrix& fm,
                                      std::uint32_t row, double y,
                                      util::Rng& rng) {
  if (!has_membership()) {
    throw std::logic_error(
        "DecisionTree::append_incremental: no captured membership");
  }
  const std::int32_t leaf = find_leaf(fm, row);
  inc_rows_.push_back(row);
  inc_y_.push_back(y);
  leaf_of_.push_back(leaf);

  // Gather the leaf's member multiset (including the new sample).
  gather_rows_.clear();
  gather_y_.clear();
  for (std::size_t i = 0; i < inc_rows_.size(); ++i) {
    if (leaf_of_[i] == leaf) {
      gather_rows_.push_back(inc_rows_[i]);
      gather_y_.push_back(inc_y_[i]);
    }
  }
  const std::size_t m = gather_rows_.size();
  const unsigned at_depth = node_depth_[static_cast<std::size_t>(leaf)];

  if (m >= options_.min_samples_split && at_depth < options_.max_depth) {
    // Re-split: rebuild the leaf's subtree from scratch over its members,
    // with the identical split search and feature subsetting as fit().
    // build() appends the fresh subtree at the end of `nodes_`; its root is
    // grafted over the old leaf slot (child indices keep pointing into the
    // appended region). A rebuild that finds no informative split produces
    // a single leaf, which is copied over and popped again.
    BuildCtx ctx(scratch_);
    ctx.fm = &fm;
    ctx.rng = &rng;
    ctx.idx.assign(gather_rows_.begin(), gather_rows_.end());
    ctx.y.assign(gather_y_.begin(), gather_y_.end());
    ctx.cnt.assign(fm.cols() * fm.max_level_count(), 0);
    ctx.sum.assign(fm.cols() * fm.max_level_count(), 0.0);
    ctx.feature_order.resize(fm.cols());
    for (std::size_t d = 0; d < fm.cols(); ++d) {
      ctx.feature_order[d] = static_cast<std::uint16_t>(d);
    }
    const std::int32_t sub = build(ctx, 0, ctx.idx.size(), at_depth);
    nodes_[static_cast<std::size_t>(leaf)] = nodes_[static_cast<std::size_t>(sub)];
    if (nodes_[static_cast<std::size_t>(leaf)].feature == kLeaf) {
      nodes_.pop_back();  // degenerate rebuild: drop the orphan leaf slot
      node_depth_.pop_back();
    } else {
      // The subtree's members moved to fresh leaves below `leaf`.
      for (std::size_t i = 0; i < inc_rows_.size(); ++i) {
        if (leaf_of_[i] == leaf) leaf_of_[i] = find_leaf(fm, inc_rows_[i]);
      }
    }
    return;
  }

  // Leaf-statistics update: the exact (mean, variance) a from-scratch fit
  // would record for this member multiset.
  double sum = 0.0;
  for (double v : gather_y_) sum += v;
  const double mean = sum / static_cast<double>(m);
  Node& nd = nodes_[static_cast<std::size_t>(leaf)];
  nd.value = static_cast<float>(mean);
  if (options_.leaf_variance) {
    double sq = 0.0;
    for (double v : gather_y_) {
      const double d = v - mean;
      sq += d * d;
    }
    nd.variance = static_cast<float>(sq / static_cast<double>(m));
  }
}

void DecisionTree::assign_fitted(const DecisionTree& src) {
  if (inc_enabled_) {
    // Reserve by the source's *fit-time* base size, not its current
    // membership: the bound is then identical for every copy of one root
    // fit, so no assignment after the first can outgrow the buffers (the
    // zero-allocation guarantee of the incremental engines).
    inc_base_ = src.inc_base_ != 0 ? src.inc_base_ : src.inc_rows_.size();
    reserve_incremental(inc_base_);
  }
  nodes_.assign(src.nodes_.begin(), src.nodes_.end());
  depth_ = src.depth_;
  inc_rows_.assign(src.inc_rows_.begin(), src.inc_rows_.end());
  inc_y_.assign(src.inc_y_.begin(), src.inc_y_.end());
  leaf_of_.assign(src.leaf_of_.begin(), src.leaf_of_.end());
  node_depth_.assign(src.node_depth_.begin(), src.node_depth_.end());
  // Propagate the split-scan scratch sizing: a tree that only ever
  // receives assign_fitted() (the engines' per-level branch models) never
  // runs fit(), so without this its first re-splitting append would size
  // cnt/sum/feature_order on the spot and allocate. The source chain
  // always starts at a fit() tree, whose scratch holds the
  // cols x max_level_count layout to copy forward.
  if (scratch_.cnt.size() < src.scratch_.cnt.size()) {
    scratch_.cnt.resize(src.scratch_.cnt.size());
  }
  if (scratch_.sum.size() < src.scratch_.sum.size()) {
    scratch_.sum.resize(src.scratch_.sum.size());
  }
  if (scratch_.feature_order.size() < src.scratch_.feature_order.size()) {
    scratch_.feature_order.resize(src.scratch_.feature_order.size());
  }
}

std::int32_t DecisionTree::build(BuildCtx& ctx, std::size_t begin,
                                 std::size_t end, unsigned depth) {
  const FeatureMatrix& fm = *ctx.fm;
  const std::size_t n = end - begin;
  depth_ = std::max(depth_, depth);

  // total_sum accumulates the targets in row order. For inner nodes the
  // fused split scan below recomputes exactly this sum alongside the
  // per-level statistics, so the standalone pass only runs for early
  // leaves.
  double total_sum = 0.0;

  auto make_leaf = [&](double node_mean) {
    Node leaf;
    leaf.value = static_cast<float>(node_mean);
    if (options_.leaf_variance) {
      double sq = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        const double d = ctx.y[i] - node_mean;
        sq += d * d;
      }
      leaf.variance = static_cast<float>(sq / static_cast<double>(n));
    }
    nodes_.push_back(leaf);
    if (inc_enabled_) node_depth_.push_back(depth);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (n < options_.min_samples_split || depth >= options_.max_depth) {
    for (std::size_t i = begin; i < end; ++i) total_sum += ctx.y[i];
    return make_leaf(total_sum / static_cast<double>(n));
  }

  // Choose the feature subset for this split (Weka RandomTree style).
  std::size_t feature_count = fm.cols();
  if (options_.features_per_split != 0 &&
      options_.features_per_split < fm.cols()) {
    feature_count = options_.features_per_split;
    // Partial Fisher-Yates: the first `feature_count` entries become a
    // uniform random subset.
    for (std::size_t i = 0; i < feature_count; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(ctx.rng->below(fm.cols() - i));
      std::swap(ctx.feature_order[i], ctx.feature_order[j]);
    }
  }

  // Variance-reduction split search. Maximizing
  //   S(split) = s_L^2/n_L + s_R^2/n_R
  // is equivalent to minimizing the summed squared error of the two
  // children, so no sum-of-squares accumulation is needed.
  double best_score = -std::numeric_limits<double>::infinity();
  std::int16_t best_feature = kLeaf;
  std::uint16_t best_code = 0;

  // Fused multi-feature statistics: one pass over the rows accumulates
  // (count, sum) per level for every candidate feature at once — the row's
  // code block is a single contiguous read, and the pass is taken once
  // instead of once per feature. Each (feature, level) bucket still
  // receives its targets in row order, so sums are bitwise identical to a
  // per-feature scan, and the threshold sweep evaluates candidates in the
  // same (feature, code) order.
  const std::size_t stride = fm.max_level_count();
  const std::uint32_t* const idx = ctx.idx.data();
  const double* const yv = ctx.y.data();
  auto scan_chunk = [&](std::size_t from, std::size_t to,
                        bool accumulate_total) {
    const std::size_t nf = to - from;
    // Hoist the selected features and their bucket base pointers out of the
    // row loop (the loop is the fit's hottest code).
    std::uint16_t sel[kMaxFeatures];
    std::uint32_t* cntk[kMaxFeatures];
    double* sumk[kMaxFeatures];
    for (std::size_t k = 0; k < nf; ++k) {
      sel[k] = ctx.feature_order[from + k];
      cntk[k] = ctx.cnt.data() + k * stride;
      sumk[k] = ctx.sum.data() + k * stride;
      const std::uint16_t levels = fm.level_count(sel[k]);
      for (std::uint16_t c = 0; c < levels; ++c) {
        cntk[k][c] = 0;
        sumk[k][c] = 0.0;
      }
    }
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint16_t* row = fm.row_codes(idx[i]);
      const double yi = yv[i];
      if (accumulate_total) total_sum += yi;
      for (std::size_t k = 0; k < nf; ++k) {
        const std::uint16_t c = row[sel[k]];
        ++cntk[k][c];
        sumk[k][c] += yi;
      }
    }
    for (std::size_t k = 0; k < nf; ++k) {
      const std::uint16_t levels = fm.level_count(sel[k]);
      std::uint32_t n_left = 0;
      double s_left = 0.0;
      for (std::uint16_t c = 0; c + 1 < levels; ++c) {
        n_left += cntk[k][c];
        s_left += sumk[k][c];
        if (n_left == 0 || n_left == n) continue;
        const auto n_right = static_cast<double>(n - n_left);
        const double s_right = total_sum - s_left;
        const double score = s_left * s_left / static_cast<double>(n_left) +
                             s_right * s_right / n_right;
        if (score > best_score) {
          best_score = score;
          best_feature = static_cast<std::int16_t>(sel[k]);
          best_code = c;
        }
      }
    }
  };
  // Candidate features are evaluated in feature_order sequence either way;
  // chunking only bounds the stack arrays for very wide spaces.
  auto scan_features = [&](std::size_t from, std::size_t to,
                           bool accumulate_total) {
    for (std::size_t at = from; at < to; at += kMaxFeatures) {
      scan_chunk(at, std::min(to, at + kMaxFeatures),
                 accumulate_total && at == from);
    }
  };

  scan_features(0, feature_count, /*accumulate_total=*/true);
  const double parent_score = total_sum * total_sum / static_cast<double>(n);
  // If the random subset offered no informative split (all its features
  // constant on this node, or no gain), fall back to the remaining
  // features before giving up — otherwise a 1-feature subset would
  // regularly truncate the tree at nodes other features could still split.
  if (best_score <= parent_score + 1e-12 && feature_count < fm.cols()) {
    scan_features(feature_count, fm.cols(), /*accumulate_total=*/false);
  }

  if (best_feature == kLeaf || best_score <= parent_score + 1e-12) {
    return make_leaf(total_sum / static_cast<double>(n));
  }

  // In-place partition of the parallel arrays.
  std::size_t mid = begin;
  for (std::size_t i = begin; i < end; ++i) {
    if (fm.code(ctx.idx[i], static_cast<std::size_t>(best_feature)) <=
        best_code) {
      std::swap(ctx.idx[i], ctx.idx[mid]);
      std::swap(ctx.y[i], ctx.y[mid]);
      ++mid;
    }
  }

  const auto self = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  if (inc_enabled_) node_depth_.push_back(depth);
  nodes_[self].feature = best_feature;
  nodes_[self].split_code = best_code;
  const std::int32_t left = build(ctx, begin, mid, depth + 1);
  const std::int32_t right = build(ctx, mid, end, depth + 1);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

double DecisionTree::predict(const FeatureMatrix& fm,
                             std::uint32_t row) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict: not fitted");
  }
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature != kLeaf) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    node = fm.code(row, static_cast<std::size_t>(nd.feature)) <= nd.split_code
               ? nd.left
               : nd.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

DecisionTree::LeafStats DecisionTree::predict_stats(const FeatureMatrix& fm,
                                                    std::uint32_t row) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict_stats: not fitted");
  }
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature != kLeaf) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    node = fm.code(row, static_cast<std::size_t>(nd.feature)) <= nd.split_code
               ? nd.left
               : nd.right;
  }
  const Node& leaf = nodes_[static_cast<std::size_t>(node)];
  return {leaf.value, leaf.variance};
}

template <class LeafFn>
bool DecisionTree::dense_walk(const FeatureMatrix& fm,
                              const std::uint32_t* rows, std::size_t n,
                              const LeafFn& leaf) const {
  const std::size_t words = fm.mask_words();
  if (fm.level_mask(0, 0) == nullptr) return false;
  // A sparse batch routes faster through the frontier partition than
  // through full-width mask intersections.
  if (rows != nullptr && n * 4 < fm.rows()) return false;

  thread_local std::vector<std::uint64_t> root_mask;
  thread_local std::vector<std::uint32_t> pos_of_row;
  thread_local std::vector<std::uint64_t> arena;
  thread_local std::vector<std::int64_t> stack;

  const bool identity = rows == nullptr;
  root_mask.assign(words, 0);
  if (identity) {
    for (std::size_t r = 0; r < n; r += 64) {
      const std::size_t bits = std::min<std::size_t>(64, n - r);
      root_mask[r / 64] =
          bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
    }
  } else {
    pos_of_row.resize(fm.rows());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t row = rows[i];
      const std::uint64_t bit = std::uint64_t{1} << (row % 64);
      if ((root_mask[row / 64] & bit) != 0) return false;  // duplicate id
      root_mask[row / 64] |= bit;
      pos_of_row[row] = static_cast<std::uint32_t>(i);
    }
  }

  // Two mask slots per depth: the left child's subtree is fully processed
  // (touching only deeper slots) before the right child's stored mask is
  // popped, so siblings never clobber each other. Sized by the depth *cap*
  // rather than the current depth: an incremental append can deepen the
  // tree after the engines' warm-up pass, and this arena must not
  // reallocate then (the zero-allocation guarantee covers the incremental
  // path too).
  arena.resize((static_cast<std::size_t>(options_.max_depth) + 2) * 2 *
               words);
  stack.reserve(2 * (static_cast<std::size_t>(options_.max_depth) + 2));
  const auto slot = [&](std::uint32_t depth, std::uint32_t side) {
    return arena.data() +
           (static_cast<std::size_t>(depth) * 2 + side) * words;
  };
  const auto encode = [](std::int32_t node, std::uint32_t depth,
                         std::uint32_t side) {
    return (static_cast<std::int64_t>(node) << 32) |
           (static_cast<std::int64_t>(depth) << 1) | side;
  };
  std::copy(root_mask.begin(), root_mask.end(), slot(0, 0));
  stack.clear();
  stack.push_back(encode(0, 0, 0));
  while (!stack.empty()) {
    const std::int64_t e = stack.back();
    stack.pop_back();
    const auto node = static_cast<std::int32_t>(e >> 32);
    const auto depth = static_cast<std::uint32_t>((e & 0xFFFFFFFF) >> 1);
    const auto side = static_cast<std::uint32_t>(e & 1);
    const std::uint64_t* m = slot(depth, side);
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    if (nd.feature == kLeaf) {
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = m[w];
        while (bits != 0) {
          const auto row = static_cast<std::uint32_t>(
              w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits)));
          leaf(identity ? row : pos_of_row[row], nd);
          bits &= bits - 1;
        }
      }
      continue;
    }
    const std::uint64_t* fmask =
        fm.level_mask(static_cast<std::size_t>(nd.feature), nd.split_code);
    std::uint64_t* lm = slot(depth + 1, 0);
    std::uint64_t* rm = slot(depth + 1, 1);
    std::uint64_t left_any = 0;
    std::uint64_t right_any = 0;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t left = m[w] & fmask[w];
      const std::uint64_t right = m[w] & ~fmask[w];
      lm[w] = left;
      rm[w] = right;
      left_any |= left;
      right_any |= right;
    }
    if (right_any != 0) stack.push_back(encode(nd.right, depth + 1, 1));
    if (left_any != 0) stack.push_back(encode(nd.left, depth + 1, 0));
  }
  return true;
}

void DecisionTree::predict_batch(const FeatureMatrix& fm,
                                 const std::uint32_t* rows, std::size_t n,
                                 float* out_value,
                                 float* out_variance) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict_batch: not fitted");
  }
  if (n == 0) return;
  const bool dense =
      out_variance != nullptr
          ? dense_walk(fm, rows, n,
                       [&](std::uint32_t pos, const Node& nd) {
                         out_value[pos] = nd.value;
                         out_variance[pos] = nd.variance;
                       })
          : dense_walk(fm, rows, n, [&](std::uint32_t pos, const Node& nd) {
              out_value[pos] = nd.value;
            });
  if (dense) return;
  predict_frontier(fm, rows, n, out_value, out_variance);
}

void DecisionTree::accumulate_batch(const FeatureMatrix& fm,
                                    const std::uint32_t* rows, std::size_t n,
                                    double* sum, double* sumsq,
                                    double* var_sum) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::accumulate_batch: not fitted");
  }
  if (n == 0) return;
  const bool dense =
      var_sum != nullptr
          ? dense_walk(fm, rows, n,
                       [&](std::uint32_t pos, const Node& nd) {
                         const double v = nd.value;
                         sum[pos] += v;
                         sumsq[pos] += v * v;
                         var_sum[pos] += nd.variance;
                       })
          : dense_walk(fm, rows, n, [&](std::uint32_t pos, const Node& nd) {
              const double v = nd.value;
              sum[pos] += v;
              sumsq[pos] += v * v;
            });
  if (dense) return;

  thread_local std::vector<float> leaf_value;
  thread_local std::vector<float> leaf_variance;
  leaf_value.resize(n);
  if (var_sum != nullptr) leaf_variance.resize(n);
  predict_frontier(fm, rows, n, leaf_value.data(),
                   var_sum != nullptr ? leaf_variance.data() : nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = leaf_value[i];
    sum[i] += v;
    sumsq[i] += v * v;
    if (var_sum != nullptr) var_sum[i] += leaf_variance[i];
  }
}

void DecisionTree::predict_frontier(const FeatureMatrix& fm,
                                    const std::uint32_t* rows, std::size_t n,
                                    float* out_value,
                                    float* out_variance) const {
  // DFS over (node, range) pairs: `order` holds batch positions and is
  // partitioned in place at every split, so each node's feature column is
  // read once for its whole row set. Scratch is thread-local: predictions
  // run concurrently across the lookahead engine's workspaces.
  struct Range {
    std::int32_t node;
    std::uint32_t begin;
    std::uint32_t end;
  };
  thread_local std::vector<std::uint32_t> order;
  thread_local std::vector<Range> stack;
  // DFS holds at most one pending right sibling per level; reserving the
  // depth-cap bound keeps this allocation-free even when incremental
  // appends deepen the tree after warm-up.
  stack.reserve(2 * (static_cast<std::size_t>(options_.max_depth) + 2));
  order.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  const auto row_of = [&](std::uint32_t pos) {
    return rows != nullptr ? rows[pos] : pos;
  };

  stack.clear();
  stack.push_back({0, 0, static_cast<std::uint32_t>(n)});
  while (!stack.empty()) {
    const Range r = stack.back();
    stack.pop_back();
    const Node& nd = nodes_[static_cast<std::size_t>(r.node)];
    if (nd.feature == kLeaf) {
      for (std::uint32_t p = r.begin; p < r.end; ++p) {
        out_value[order[p]] = nd.value;
        if (out_variance != nullptr) out_variance[order[p]] = nd.variance;
      }
      continue;
    }
    const auto feature = static_cast<std::size_t>(nd.feature);
    std::uint32_t mid = r.begin;
    for (std::uint32_t p = r.begin; p < r.end; ++p) {
      if (fm.code(row_of(order[p]), feature) <= nd.split_code) {
        std::swap(order[p], order[mid]);
        ++mid;
      }
    }
    if (mid < r.end) stack.push_back({nd.right, mid, r.end});
    if (r.begin < mid) stack.push_back({nd.left, r.begin, mid});
  }
}

void DecisionTree::save_state(util::JsonWriter& w) const {
  if (!fitted()) {
    throw std::logic_error("DecisionTree::save_state: not fitted");
  }
  w.begin_object();
  w.key("depth").value(static_cast<std::uint64_t>(depth_));
  w.key("left").begin_array();
  for (const Node& n : nodes_) w.value(static_cast<std::int64_t>(n.left));
  w.end_array();
  w.key("right").begin_array();
  for (const Node& n : nodes_) w.value(static_cast<std::int64_t>(n.right));
  w.end_array();
  w.key("feature").begin_array();
  for (const Node& n : nodes_) w.value(static_cast<std::int64_t>(n.feature));
  w.end_array();
  w.key("split").begin_array();
  for (const Node& n : nodes_) {
    w.value(static_cast<std::uint64_t>(n.split_code));
  }
  w.end_array();
  // float → double is exact; value_exact round-trips the double, and the
  // load-side narrowing back to float recovers the original bit pattern.
  w.key("value").begin_array();
  for (const Node& n : nodes_) w.value_exact(static_cast<double>(n.value));
  w.end_array();
  w.key("variance").begin_array();
  for (const Node& n : nodes_) {
    w.value_exact(static_cast<double>(n.variance));
  }
  w.end_array();
  w.key("inc").begin_object();
  w.key("enabled").value(inc_enabled_);
  w.key("reserve").value(static_cast<std::uint64_t>(inc_reserve_));
  w.key("base").value(static_cast<std::uint64_t>(inc_base_));
  w.key("rows").begin_array();
  for (std::uint32_t r : inc_rows_) w.value(static_cast<std::uint64_t>(r));
  w.end_array();
  w.key("y").begin_array();
  for (double y : inc_y_) w.value_exact(y);
  w.end_array();
  w.key("leaf_of").begin_array();
  for (std::int32_t l : leaf_of_) w.value(static_cast<std::int64_t>(l));
  w.end_array();
  w.key("node_depth").begin_array();
  for (std::uint32_t d : node_depth_) {
    w.value(static_cast<std::uint64_t>(d));
  }
  w.end_array();
  w.end_object();
  w.end_object();
}

void DecisionTree::load_state(const util::JsonValue& v) {
  const util::JsonValue& left = v.at("left");
  const util::JsonValue& right = v.at("right");
  const util::JsonValue& feature = v.at("feature");
  const util::JsonValue& split = v.at("split");
  const util::JsonValue& value = v.at("value");
  const util::JsonValue& variance = v.at("variance");
  const std::size_t n = left.size();
  if (n == 0 || right.size() != n || feature.size() != n ||
      split.size() != n || value.size() != n || variance.size() != n) {
    throw std::runtime_error(
        "DecisionTree::load_state: inconsistent node arrays");
  }
  nodes_.clear();
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Node node;
    node.left = static_cast<std::int32_t>(left.at(i).as_int());
    node.right = static_cast<std::int32_t>(right.at(i).as_int());
    node.feature = static_cast<std::int16_t>(feature.at(i).as_int());
    node.split_code = static_cast<std::uint16_t>(split.at(i).as_uint());
    node.value = static_cast<float>(value.at(i).as_double());
    node.variance = static_cast<float>(variance.at(i).as_double());
    if (node.feature != kLeaf &&
        (node.left < 0 || node.right < 0 ||
         node.left >= static_cast<std::int32_t>(n) ||
         node.right >= static_cast<std::int32_t>(n))) {
      throw std::runtime_error(
          "DecisionTree::load_state: child index out of range");
    }
    nodes_.push_back(node);
  }
  depth_ = static_cast<unsigned>(v.at("depth").as_uint());

  const util::JsonValue& inc = v.at("inc");
  inc_enabled_ = inc.at("enabled").as_bool();
  inc_reserve_ = static_cast<std::size_t>(inc.at("reserve").as_uint());
  inc_base_ = static_cast<std::size_t>(inc.at("base").as_uint());
  inc_rows_.clear();
  for (const util::JsonValue& r : inc.at("rows").items()) {
    inc_rows_.push_back(static_cast<std::uint32_t>(r.as_uint()));
  }
  inc_y_.clear();
  for (const util::JsonValue& y : inc.at("y").items()) {
    inc_y_.push_back(y.as_double());
  }
  leaf_of_.clear();
  for (const util::JsonValue& l : inc.at("leaf_of").items()) {
    leaf_of_.push_back(static_cast<std::int32_t>(l.as_int()));
  }
  node_depth_.clear();
  for (const util::JsonValue& d : inc.at("node_depth").items()) {
    node_depth_.push_back(static_cast<std::uint32_t>(d.as_uint()));
  }
  if (inc_rows_.size() != inc_y_.size() ||
      inc_rows_.size() != leaf_of_.size()) {
    throw std::runtime_error(
        "DecisionTree::load_state: inconsistent membership arrays");
  }
  if (!node_depth_.empty() && node_depth_.size() != nodes_.size()) {
    throw std::runtime_error(
        "DecisionTree::load_state: node_depth/nodes mismatch");
  }
  // Mirror assign_fitted's reservation so post-load appends behave like
  // post-assign ones (capacity only; appends remain correct regardless).
  if (inc_enabled_) {
    if (inc_base_ == 0) inc_base_ = inc_rows_.size();
    if (inc_base_ > 0) reserve_incremental(inc_base_);
  }
}

}  // namespace lynceus::model

#include "model/decision_tree.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace lynceus::model {

DecisionTree::DecisionTree(TreeOptions options) : options_(options) {}

struct DecisionTree::BuildCtx {
  const FeatureMatrix* fm = nullptr;
  util::Rng* rng = nullptr;
  // Parallel arrays, partitioned in place as the tree grows.
  std::vector<std::uint32_t> idx;
  std::vector<double> y;
  // Per-level scratch, reused across nodes (sized max_level_count).
  std::vector<std::uint32_t> cnt;
  std::vector<double> sum;
  // Feature-subset scratch.
  std::vector<std::uint16_t> feature_order;
};

void DecisionTree::fit(const FeatureMatrix& fm,
                       const std::vector<std::uint32_t>& rows,
                       const std::vector<double>& y, util::Rng& rng) {
  if (rows.empty() || rows.size() != y.size()) {
    throw std::invalid_argument(
        "DecisionTree::fit: rows and y must be non-empty and equal-sized");
  }
  nodes_.clear();
  depth_ = 0;
  nodes_.reserve(2 * rows.size());

  BuildCtx ctx;
  ctx.fm = &fm;
  ctx.rng = &rng;
  ctx.idx = rows;
  ctx.y = y;
  ctx.cnt.assign(fm.max_level_count(), 0);
  ctx.sum.assign(fm.max_level_count(), 0.0);
  ctx.feature_order.resize(fm.cols());
  for (std::size_t d = 0; d < fm.cols(); ++d) {
    ctx.feature_order[d] = static_cast<std::uint16_t>(d);
  }

  build(ctx, 0, ctx.idx.size(), 0);
}

std::int32_t DecisionTree::build(BuildCtx& ctx, std::size_t begin,
                                 std::size_t end, unsigned depth) {
  const FeatureMatrix& fm = *ctx.fm;
  const std::size_t n = end - begin;
  depth_ = std::max(depth_, depth);

  double total_sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) total_sum += ctx.y[i];
  const double node_mean = total_sum / static_cast<double>(n);

  auto make_leaf = [&]() {
    Node leaf;
    leaf.value = static_cast<float>(node_mean);
    double sq = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double d = ctx.y[i] - node_mean;
      sq += d * d;
    }
    leaf.variance = static_cast<float>(sq / static_cast<double>(n));
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (n < options_.min_samples_split || depth >= options_.max_depth) {
    return make_leaf();
  }

  // Choose the feature subset for this split (Weka RandomTree style).
  std::size_t feature_count = fm.cols();
  if (options_.features_per_split != 0 &&
      options_.features_per_split < fm.cols()) {
    feature_count = options_.features_per_split;
    // Partial Fisher-Yates: the first `feature_count` entries become a
    // uniform random subset.
    for (std::size_t i = 0; i < feature_count; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(ctx.rng->below(fm.cols() - i));
      std::swap(ctx.feature_order[i], ctx.feature_order[j]);
    }
  }

  // Variance-reduction split search. Maximizing
  //   S(split) = s_L^2/n_L + s_R^2/n_R
  // is equivalent to minimizing the summed squared error of the two
  // children, so no sum-of-squares accumulation is needed.
  const double parent_score = total_sum * total_sum / static_cast<double>(n);
  double best_score = -std::numeric_limits<double>::infinity();
  std::int16_t best_feature = kLeaf;
  std::uint16_t best_code = 0;

  auto scan_features = [&](std::size_t from, std::size_t to) {
    for (std::size_t f = from; f < to; ++f) {
      const std::uint16_t feature = ctx.feature_order[f];
      const std::uint16_t levels = fm.level_count(feature);
      for (std::uint16_t c = 0; c < levels; ++c) {
        ctx.cnt[c] = 0;
        ctx.sum[c] = 0.0;
      }
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint16_t c = fm.code(ctx.idx[i], feature);
        ++ctx.cnt[c];
        ctx.sum[c] += ctx.y[i];
      }
      std::uint32_t n_left = 0;
      double s_left = 0.0;
      for (std::uint16_t c = 0; c + 1 < levels; ++c) {
        n_left += ctx.cnt[c];
        s_left += ctx.sum[c];
        if (n_left == 0 || n_left == n) continue;
        const auto n_right = static_cast<double>(n - n_left);
        const double s_right = total_sum - s_left;
        const double score = s_left * s_left / static_cast<double>(n_left) +
                             s_right * s_right / n_right;
        if (score > best_score) {
          best_score = score;
          best_feature = static_cast<std::int16_t>(feature);
          best_code = c;
        }
      }
    }
  };

  scan_features(0, feature_count);
  // If the random subset offered no informative split (all its features
  // constant on this node, or no gain), fall back to the remaining
  // features before giving up — otherwise a 1-feature subset would
  // regularly truncate the tree at nodes other features could still split.
  if (best_score <= parent_score + 1e-12 && feature_count < fm.cols()) {
    scan_features(feature_count, fm.cols());
  }

  if (best_feature == kLeaf || best_score <= parent_score + 1e-12) {
    return make_leaf();
  }

  // In-place partition of the parallel arrays.
  std::size_t mid = begin;
  for (std::size_t i = begin; i < end; ++i) {
    if (fm.code(ctx.idx[i], static_cast<std::size_t>(best_feature)) <=
        best_code) {
      std::swap(ctx.idx[i], ctx.idx[mid]);
      std::swap(ctx.y[i], ctx.y[mid]);
      ++mid;
    }
  }

  const auto self = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[self].feature = best_feature;
  nodes_[self].split_code = best_code;
  const std::int32_t left = build(ctx, begin, mid, depth + 1);
  const std::int32_t right = build(ctx, mid, end, depth + 1);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

double DecisionTree::predict(const FeatureMatrix& fm,
                             std::uint32_t row) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict: not fitted");
  }
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature != kLeaf) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    node = fm.code(row, static_cast<std::size_t>(nd.feature)) <= nd.split_code
               ? nd.left
               : nd.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

DecisionTree::LeafStats DecisionTree::predict_stats(const FeatureMatrix& fm,
                                                    std::uint32_t row) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict_stats: not fitted");
  }
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature != kLeaf) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    node = fm.code(row, static_cast<std::size_t>(nd.feature)) <= nd.split_code
               ? nd.left
               : nd.right;
  }
  const Node& leaf = nodes_[static_cast<std::size_t>(node)];
  return {leaf.value, leaf.variance};
}

}  // namespace lynceus::model

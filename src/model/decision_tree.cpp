#include "model/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#if defined(LYNCEUS_SIMD) && defined(__x86_64__)
// Explicit AVX2 routing kernel (route_levels_avx2 below). The kernel is
// compiled via the `target` function attribute, so this TU needs no global
// -mavx2 and the binary stays runnable on non-AVX2 hosts — a runtime CPU
// check selects the scalar sweep there.
#define LYNCEUS_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace lynceus::model {

DecisionTree::DecisionTree(TreeOptions options) : options_(options) {}

/// Upper bound on features statted per fused split-scan pass (bounds the
/// scan's stack arrays; wider spaces just take several passes).
static constexpr std::size_t kMaxFeatures = 64;

/// Thin view over the fm/rng and the tree-owned FitScratch buffers (the
/// vectors live in `scratch_` so refits reuse their capacity).
struct DecisionTree::BuildCtx {
  const FeatureMatrix* fm = nullptr;
  util::Rng* rng = nullptr;
  // Parallel arrays, partitioned in place as the tree grows.
  std::vector<std::uint32_t>& idx;
  std::vector<double>& y;
  // Per-(feature, level) scratch for the fused split scan, reused across
  // nodes (sized cols * max_level_count).
  std::vector<std::uint32_t>& cnt;
  std::vector<double>& sum;
  // Feature-subset scratch.
  std::vector<std::uint16_t>& feature_order;

  explicit BuildCtx(FitScratch& s)
      : idx(s.idx), y(s.y), cnt(s.cnt), sum(s.sum),
        feature_order(s.feature_order) {}
};

void DecisionTree::fit(const FeatureMatrix& fm,
                       const std::vector<std::uint32_t>& rows,
                       const std::vector<double>& y, util::Rng& rng) {
  if (rows.empty() || rows.size() != y.size()) {
    throw std::invalid_argument(
        "DecisionTree::fit: rows and y must be non-empty and equal-sized");
  }
  nodes_.clear();
  node_depth_.clear();
  depth_ = 0;
  nodes_.reserve(2 * rows.size());
  if (inc_enabled_) {
    inc_base_ = rows.size();
    reserve_incremental(inc_base_);
  }

  BuildCtx ctx(scratch_);
  ctx.fm = &fm;
  ctx.rng = &rng;
  ctx.idx.assign(rows.begin(), rows.end());
  ctx.y.assign(y.begin(), y.end());
  ctx.cnt.assign(fm.cols() * fm.max_level_count(), 0);
  ctx.sum.assign(fm.cols() * fm.max_level_count(), 0.0);
  ctx.feature_order.resize(fm.cols());
  for (std::size_t d = 0; d < fm.cols(); ++d) {
    ctx.feature_order[d] = static_cast<std::uint16_t>(d);
  }

  build(ctx, 0, ctx.idx.size(), 0);

  if (inc_enabled_) {
    // Capture the membership for append_incremental: the training multiset
    // plus each sample's leaf (the fit's in-place partition destroys the
    // original order, so samples are re-routed — O(n · depth)).
    inc_rows_.assign(rows.begin(), rows.end());
    inc_y_.assign(y.begin(), y.end());
    leaf_of_.resize(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      leaf_of_[i] = find_leaf(fm, rows[i]);
    }
  }
  rebuild_flat();
}

void DecisionTree::rebuild_flat() {
  const std::size_t n = nodes_.size();
  // Track the AoS capacity, not just the current size: nodes_ carries
  // geometric-growth slack across fits and assign_fitted, so a slightly
  // bigger tree landing in a warmed model grows nodes_ for free — the
  // flat mirror must not reallocate in that case either (steady state is
  // asserted allocation-free).
  const std::size_t cap = nodes_.capacity();
  flat_feature_.reserve(cap);
  flat_split_.reserve(cap);
  flat_left_.reserve(cap);
  flat_right_.reserve(cap);
  flat_value_.reserve(cap);
  flat_variance_.reserve(cap);
  flat_fs_.reserve(cap);
  flat_lr_.reserve(cap);
  flat_feature_.resize(n);
  flat_split_.resize(n);
  flat_left_.resize(n);
  flat_right_.resize(n);
  flat_value_.resize(n);
  flat_variance_.resize(n);
  flat_fs_.resize(n);
  flat_lr_.resize(n);
  for (std::size_t i = 0; i < n; ++i) refresh_flat_node(i);
}

void DecisionTree::refresh_flat_node(std::size_t i) {
  const Node& nd = nodes_[i];
  if (nd.feature == kLeaf) {
    // Leaf self-loop: every code is <= 0xFFFF, so the level-sync route
    // keeps the row parked on this node for the remaining passes.
    flat_feature_[i] = 0;
    flat_split_[i] = 0xFFFF;
    flat_left_[i] = static_cast<std::int32_t>(i);
    flat_right_[i] = static_cast<std::int32_t>(i);
  } else {
    flat_feature_[i] = nd.feature;
    flat_split_[i] = nd.split_code;
    flat_left_[i] = nd.left;
    flat_right_[i] = nd.right;
  }
  flat_value_[i] = nd.value;
  flat_variance_[i] = nd.variance;
  flat_fs_[i] =
      (static_cast<std::uint32_t>(flat_feature_[i]) << 16) |
      static_cast<std::uint32_t>(flat_split_[i]);
  flat_lr_[i] =
      static_cast<std::uint32_t>(flat_left_[i]) |
      (static_cast<std::uint64_t>(
           static_cast<std::uint32_t>(flat_right_[i]))
       << 32);
}

void DecisionTree::set_incremental(bool on, std::size_t reserve_extra) {
  inc_enabled_ = on;
  inc_reserve_ = on ? reserve_extra : 0;
  if (!on) {
    inc_rows_.clear();
    inc_y_.clear();
    leaf_of_.clear();
    node_depth_.clear();
  }
}

void DecisionTree::reserve_incremental(std::size_t base_samples) {
  const std::size_t n = base_samples + inc_reserve_;
  // Base fit builds <= 2n-1 nodes; every append may rebuild one leaf's
  // subtree over <= n members (<= 2n-1 fresh nodes, one orphaned slot).
  const std::size_t node_bound = 2 * n * (inc_reserve_ + 1) + inc_reserve_ + 2;
  nodes_.reserve(node_bound);
  node_depth_.reserve(node_bound);
  // The flat mirror is refreshed after every append; reserving it by the
  // same bound keeps the refresh allocation-free.
  flat_feature_.reserve(node_bound);
  flat_split_.reserve(node_bound);
  flat_left_.reserve(node_bound);
  flat_right_.reserve(node_bound);
  flat_value_.reserve(node_bound);
  flat_variance_.reserve(node_bound);
  inc_rows_.reserve(n);
  inc_y_.reserve(n);
  leaf_of_.reserve(n);
  gather_rows_.reserve(n);
  gather_y_.reserve(n);
  scratch_.idx.reserve(n);
  scratch_.y.reserve(n);
}

std::int32_t DecisionTree::find_leaf(const FeatureMatrix& fm,
                                     std::uint32_t row) const noexcept {
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature != kLeaf) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    node = fm.code(row, static_cast<std::size_t>(nd.feature)) <= nd.split_code
               ? nd.left
               : nd.right;
  }
  return node;
}

void DecisionTree::append_incremental(const FeatureMatrix& fm,
                                      std::uint32_t row, double y,
                                      util::Rng& rng) {
  if (!has_membership()) {
    throw std::logic_error(
        "DecisionTree::append_incremental: no captured membership");
  }
  const std::int32_t leaf = find_leaf(fm, row);
  inc_rows_.push_back(row);
  inc_y_.push_back(y);
  leaf_of_.push_back(leaf);

  // Gather the leaf's member multiset (including the new sample).
  gather_rows_.clear();
  gather_y_.clear();
  for (std::size_t i = 0; i < inc_rows_.size(); ++i) {
    if (leaf_of_[i] == leaf) {
      gather_rows_.push_back(inc_rows_[i]);
      gather_y_.push_back(inc_y_[i]);
    }
  }
  const std::size_t m = gather_rows_.size();
  const unsigned at_depth = node_depth_[static_cast<std::size_t>(leaf)];

  if (m >= options_.min_samples_split && at_depth < options_.max_depth) {
    // Re-split: rebuild the leaf's subtree from scratch over its members,
    // with the identical split search and feature subsetting as fit().
    // build() appends the fresh subtree at the end of `nodes_`; its root is
    // grafted over the old leaf slot (child indices keep pointing into the
    // appended region). A rebuild that finds no informative split produces
    // a single leaf, which is copied over and popped again.
    const std::size_t n_before = nodes_.size();
    BuildCtx ctx(scratch_);
    ctx.fm = &fm;
    ctx.rng = &rng;
    ctx.idx.assign(gather_rows_.begin(), gather_rows_.end());
    ctx.y.assign(gather_y_.begin(), gather_y_.end());
    ctx.cnt.assign(fm.cols() * fm.max_level_count(), 0);
    ctx.sum.assign(fm.cols() * fm.max_level_count(), 0.0);
    ctx.feature_order.resize(fm.cols());
    for (std::size_t d = 0; d < fm.cols(); ++d) {
      ctx.feature_order[d] = static_cast<std::uint16_t>(d);
    }
    const std::int32_t sub = build(ctx, 0, ctx.idx.size(), at_depth);
    nodes_[static_cast<std::size_t>(leaf)] = nodes_[static_cast<std::size_t>(sub)];
    if (nodes_[static_cast<std::size_t>(leaf)].feature == kLeaf) {
      nodes_.pop_back();  // degenerate rebuild: drop the orphan leaf slot
      node_depth_.pop_back();
    } else {
      // The subtree's members moved to fresh leaves below `leaf`.
      for (std::size_t i = 0; i < inc_rows_.size(); ++i) {
        if (leaf_of_[i] == leaf) leaf_of_[i] = find_leaf(fm, inc_rows_[i]);
      }
    }
    // Patch the mirror instead of rebuilding it: only the grafted slot and
    // the appended subtree changed; every other node's routing words are
    // untouched. Re-splits recur throughout a multi-constraint lookahead
    // (every model clone appends fantasy samples), so an O(nodes) rebuild
    // here compounds into a measurable decision-time regression.
    const std::size_t flat_n = nodes_.size();
    flat_feature_.resize(flat_n);
    flat_split_.resize(flat_n);
    flat_left_.resize(flat_n);
    flat_right_.resize(flat_n);
    flat_value_.resize(flat_n);
    flat_variance_.resize(flat_n);
    flat_fs_.resize(flat_n);
    flat_lr_.resize(flat_n);
    refresh_flat_node(static_cast<std::size_t>(leaf));
    for (std::size_t i = n_before; i < flat_n; ++i) refresh_flat_node(i);
    return;
  }

  // Leaf-statistics update: the exact (mean, variance) a from-scratch fit
  // would record for this member multiset.
  double sum = 0.0;
  for (double v : gather_y_) sum += v;
  const double mean = sum / static_cast<double>(m);
  Node& nd = nodes_[static_cast<std::size_t>(leaf)];
  nd.value = static_cast<float>(mean);
  if (options_.leaf_variance) {
    double sq = 0.0;
    for (double v : gather_y_) {
      const double d = v - mean;
      sq += d * d;
    }
    nd.variance = static_cast<float>(sq / static_cast<double>(m));
  }
  // Patch, don't rebuild: only this leaf's (value, variance) changed, and
  // neither lives in the packed routing words — an O(1) mirror update.
  // (A full rebuild_flat() here costs O(nodes) on *every* fantasy append
  // and measurably regressed incremental multi-constraint decisions; the
  // rare re-split path above still rebuilds, since it rewires topology.)
  flat_value_[static_cast<std::size_t>(leaf)] = nd.value;
  flat_variance_[static_cast<std::size_t>(leaf)] = nd.variance;
}

void DecisionTree::assign_fitted(const DecisionTree& src) {
  if (inc_enabled_) {
    // Reserve by the source's *fit-time* base size, not its current
    // membership: the bound is then identical for every copy of one root
    // fit, so no assignment after the first can outgrow the buffers (the
    // zero-allocation guarantee of the incremental engines).
    inc_base_ = src.inc_base_ != 0 ? src.inc_base_ : src.inc_rows_.size();
    reserve_incremental(inc_base_);
  }
  nodes_.assign(src.nodes_.begin(), src.nodes_.end());
  depth_ = src.depth_;
  inc_rows_.assign(src.inc_rows_.begin(), src.inc_rows_.end());
  inc_y_.assign(src.inc_y_.begin(), src.inc_y_.end());
  leaf_of_.assign(src.leaf_of_.begin(), src.leaf_of_.end());
  node_depth_.assign(src.node_depth_.begin(), src.node_depth_.end());
  // Propagate the split-scan scratch sizing: a tree that only ever
  // receives assign_fitted() (the engines' per-level branch models) never
  // runs fit(), so without this its first re-splitting append would size
  // cnt/sum/feature_order on the spot and allocate. The source chain
  // always starts at a fit() tree, whose scratch holds the
  // cols x max_level_count layout to copy forward.
  if (scratch_.cnt.size() < src.scratch_.cnt.size()) {
    scratch_.cnt.resize(src.scratch_.cnt.size());
  }
  if (scratch_.sum.size() < src.scratch_.sum.size()) {
    scratch_.sum.resize(src.scratch_.sum.size());
  }
  if (scratch_.feature_order.size() < src.scratch_.feature_order.size()) {
    scratch_.feature_order.resize(src.scratch_.feature_order.size());
  }
  // The mirror is a pure function of nodes_, which was just copied verbatim
  // — so copy the source's (always-current) mirror too instead of deriving
  // it again. assign_fitted runs once per model clone inside every
  // incremental lookahead branch, and the contiguous copies here are
  // several times cheaper than rebuild_flat()'s per-node scalar loop.
  // Reserve to the AoS capacity first so the mirror keeps matching nodes_'
  // growth slack (the allocation-free steady-state guarantee).
  const std::size_t cap = nodes_.capacity();
  flat_feature_.reserve(cap);
  flat_split_.reserve(cap);
  flat_left_.reserve(cap);
  flat_right_.reserve(cap);
  flat_value_.reserve(cap);
  flat_variance_.reserve(cap);
  flat_fs_.reserve(cap);
  flat_lr_.reserve(cap);
  flat_feature_.assign(src.flat_feature_.begin(), src.flat_feature_.end());
  flat_split_.assign(src.flat_split_.begin(), src.flat_split_.end());
  flat_left_.assign(src.flat_left_.begin(), src.flat_left_.end());
  flat_right_.assign(src.flat_right_.begin(), src.flat_right_.end());
  flat_value_.assign(src.flat_value_.begin(), src.flat_value_.end());
  flat_variance_.assign(src.flat_variance_.begin(), src.flat_variance_.end());
  flat_fs_.assign(src.flat_fs_.begin(), src.flat_fs_.end());
  flat_lr_.assign(src.flat_lr_.begin(), src.flat_lr_.end());
}

std::int32_t DecisionTree::build(BuildCtx& ctx, std::size_t begin,
                                 std::size_t end, unsigned depth) {
  const FeatureMatrix& fm = *ctx.fm;
  const std::size_t n = end - begin;
  depth_ = std::max(depth_, depth);

  // total_sum accumulates the targets in row order. For inner nodes the
  // fused split scan below recomputes exactly this sum alongside the
  // per-level statistics, so the standalone pass only runs for early
  // leaves.
  double total_sum = 0.0;

  auto make_leaf = [&](double node_mean) {
    Node leaf;
    leaf.value = static_cast<float>(node_mean);
    if (options_.leaf_variance) {
      double sq = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        const double d = ctx.y[i] - node_mean;
        sq += d * d;
      }
      leaf.variance = static_cast<float>(sq / static_cast<double>(n));
    }
    nodes_.push_back(leaf);
    if (inc_enabled_) node_depth_.push_back(depth);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (n < options_.min_samples_split || depth >= options_.max_depth) {
    for (std::size_t i = begin; i < end; ++i) total_sum += ctx.y[i];
    return make_leaf(total_sum / static_cast<double>(n));
  }

  // Choose the feature subset for this split (Weka RandomTree style).
  std::size_t feature_count = fm.cols();
  if (options_.features_per_split != 0 &&
      options_.features_per_split < fm.cols()) {
    feature_count = options_.features_per_split;
    // Partial Fisher-Yates: the first `feature_count` entries become a
    // uniform random subset.
    for (std::size_t i = 0; i < feature_count; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(ctx.rng->below(fm.cols() - i));
      std::swap(ctx.feature_order[i], ctx.feature_order[j]);
    }
  }

  // Variance-reduction split search. Maximizing
  //   S(split) = s_L^2/n_L + s_R^2/n_R
  // is equivalent to minimizing the summed squared error of the two
  // children, so no sum-of-squares accumulation is needed.
  double best_score = -std::numeric_limits<double>::infinity();
  std::int16_t best_feature = kLeaf;
  std::uint16_t best_code = 0;

  // Fused multi-feature statistics: one pass over the rows accumulates
  // (count, sum) per level for every candidate feature at once — the row's
  // code block is a single contiguous read, and the pass is taken once
  // instead of once per feature. Each (feature, level) bucket still
  // receives its targets in row order, so sums are bitwise identical to a
  // per-feature scan, and the threshold sweep evaluates candidates in the
  // same (feature, code) order.
  const std::size_t stride = fm.max_level_count();
  const std::uint32_t* const idx = ctx.idx.data();
  const double* const yv = ctx.y.data();
  auto scan_chunk = [&](std::size_t from, std::size_t to,
                        bool accumulate_total) {
    const std::size_t nf = to - from;
    // Hoist the selected features and their bucket base pointers out of the
    // row loop (the loop is the fit's hottest code).
    std::uint16_t sel[kMaxFeatures];
    std::uint32_t* cntk[kMaxFeatures];
    double* sumk[kMaxFeatures];
    for (std::size_t k = 0; k < nf; ++k) {
      sel[k] = ctx.feature_order[from + k];
      cntk[k] = ctx.cnt.data() + k * stride;
      sumk[k] = ctx.sum.data() + k * stride;
      const std::uint16_t levels = fm.level_count(sel[k]);
      for (std::uint16_t c = 0; c < levels; ++c) {
        cntk[k][c] = 0;
        sumk[k][c] = 0.0;
      }
    }
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint16_t* row = fm.row_codes(idx[i]);
      const double yi = yv[i];
      if (accumulate_total) total_sum += yi;
      for (std::size_t k = 0; k < nf; ++k) {
        const std::uint16_t c = row[sel[k]];
        ++cntk[k][c];
        sumk[k][c] += yi;
      }
    }
    for (std::size_t k = 0; k < nf; ++k) {
      const std::uint16_t levels = fm.level_count(sel[k]);
      std::uint32_t n_left = 0;
      double s_left = 0.0;
      for (std::uint16_t c = 0; c + 1 < levels; ++c) {
        n_left += cntk[k][c];
        s_left += sumk[k][c];
        if (n_left == 0 || n_left == n) continue;
        const auto n_right = static_cast<double>(n - n_left);
        const double s_right = total_sum - s_left;
        const double score = s_left * s_left / static_cast<double>(n_left) +
                             s_right * s_right / n_right;
        if (score > best_score) {
          best_score = score;
          best_feature = static_cast<std::int16_t>(sel[k]);
          best_code = c;
        }
      }
    }
  };
  // Candidate features are evaluated in feature_order sequence either way;
  // chunking only bounds the stack arrays for very wide spaces.
  auto scan_features = [&](std::size_t from, std::size_t to,
                           bool accumulate_total) {
    for (std::size_t at = from; at < to; at += kMaxFeatures) {
      scan_chunk(at, std::min(to, at + kMaxFeatures),
                 accumulate_total && at == from);
    }
  };

  scan_features(0, feature_count, /*accumulate_total=*/true);
  const double parent_score = total_sum * total_sum / static_cast<double>(n);
  // If the random subset offered no informative split (all its features
  // constant on this node, or no gain), fall back to the remaining
  // features before giving up — otherwise a 1-feature subset would
  // regularly truncate the tree at nodes other features could still split.
  if (best_score <= parent_score + 1e-12 && feature_count < fm.cols()) {
    scan_features(feature_count, fm.cols(), /*accumulate_total=*/false);
  }

  if (best_feature == kLeaf || best_score <= parent_score + 1e-12) {
    return make_leaf(total_sum / static_cast<double>(n));
  }

  // In-place partition of the parallel arrays.
  std::size_t mid = begin;
  for (std::size_t i = begin; i < end; ++i) {
    if (fm.code(ctx.idx[i], static_cast<std::size_t>(best_feature)) <=
        best_code) {
      std::swap(ctx.idx[i], ctx.idx[mid]);
      std::swap(ctx.y[i], ctx.y[mid]);
      ++mid;
    }
  }

  const auto self = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  if (inc_enabled_) node_depth_.push_back(depth);
  nodes_[self].feature = best_feature;
  nodes_[self].split_code = best_code;
  const std::int32_t left = build(ctx, begin, mid, depth + 1);
  const std::int32_t right = build(ctx, mid, end, depth + 1);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

double DecisionTree::predict(const FeatureMatrix& fm,
                             std::uint32_t row) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict: not fitted");
  }
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature != kLeaf) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    node = fm.code(row, static_cast<std::size_t>(nd.feature)) <= nd.split_code
               ? nd.left
               : nd.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

DecisionTree::LeafStats DecisionTree::predict_stats(const FeatureMatrix& fm,
                                                    std::uint32_t row) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict_stats: not fitted");
  }
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature != kLeaf) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    node = fm.code(row, static_cast<std::size_t>(nd.feature)) <= nd.split_code
               ? nd.left
               : nd.right;
  }
  const Node& leaf = nodes_[static_cast<std::size_t>(node)];
  return {leaf.value, leaf.variance};
}

template <class LeafFn>
bool DecisionTree::dense_walk(const FeatureMatrix& fm,
                              const std::uint32_t* rows, std::size_t n,
                              PredictScratch& s, const LeafFn& leaf) const {
  const std::size_t words = fm.mask_words();
  if (fm.level_mask(0, 0) == nullptr) return false;
  // A sparse batch routes faster through the level-sync sweep than
  // through full-width mask intersections. (A finer work-estimate cut
  // was tried and reverted: per-node mask costs vary too much across
  // spaces for a single crossover constant — it mis-routed mid-size
  // tensorflow candidate batches and regressed LA decisions up to 1.7×.)
  if (rows != nullptr && n * 4 < fm.rows()) return false;

  const bool identity = rows == nullptr;
  s.root_mask.assign(words, 0);
  if (identity) {
    for (std::size_t r = 0; r < n; r += 64) {
      const std::size_t bits = std::min<std::size_t>(64, n - r);
      s.root_mask[r / 64] =
          bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
    }
  } else {
    s.pos_of_row.resize(fm.rows());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t row = rows[i];
      const std::uint64_t bit = std::uint64_t{1} << (row % 64);
      if ((s.root_mask[row / 64] & bit) != 0) return false;  // duplicate id
      s.root_mask[row / 64] |= bit;
      s.pos_of_row[row] = static_cast<std::uint32_t>(i);
    }
  }

  // Two mask slots per depth: the left child's subtree is fully processed
  // (touching only deeper slots) before the right child's stored mask is
  // popped, so siblings never clobber each other. Sized by the depth *cap*
  // rather than the current depth: an incremental append can deepen the
  // tree after the engines' warm-up pass, and this arena must not
  // reallocate then (the zero-allocation guarantee covers the incremental
  // path too).
  s.arena.resize((static_cast<std::size_t>(options_.max_depth) + 2) * 2 *
                 words);
  s.stack.reserve(2 * (static_cast<std::size_t>(options_.max_depth) + 2));
  const auto slot = [&](std::uint32_t depth, std::uint32_t side) {
    return s.arena.data() +
           (static_cast<std::size_t>(depth) * 2 + side) * words;
  };
  const auto encode = [](std::int32_t node, std::uint32_t depth,
                         std::uint32_t side) {
    return (static_cast<std::int64_t>(node) << 32) |
           (static_cast<std::int64_t>(depth) << 1) | side;
  };
  std::copy(s.root_mask.begin(), s.root_mask.end(), slot(0, 0));
  s.stack.clear();
  s.stack.push_back(encode(0, 0, 0));
  while (!s.stack.empty()) {
    const std::int64_t e = s.stack.back();
    s.stack.pop_back();
    const auto node = static_cast<std::int32_t>(e >> 32);
    const auto depth = static_cast<std::uint32_t>((e & 0xFFFFFFFF) >> 1);
    const auto side = static_cast<std::uint32_t>(e & 1);
    const std::uint64_t* m = slot(depth, side);
    const auto ni = static_cast<std::size_t>(node);
    if (flat_left_[ni] == node) {  // leaf (self-loop)
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = m[w];
        while (bits != 0) {
          const auto row = static_cast<std::uint32_t>(
              w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits)));
          leaf(identity ? row : s.pos_of_row[row], ni);
          bits &= bits - 1;
        }
      }
      continue;
    }
    const std::uint64_t* fmask =
        fm.level_mask(static_cast<std::size_t>(flat_feature_[ni]),
                      static_cast<std::uint16_t>(flat_split_[ni]));
    std::uint64_t* lm = slot(depth + 1, 0);
    std::uint64_t* rm = slot(depth + 1, 1);
    std::uint64_t left_any = 0;
    std::uint64_t right_any = 0;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t left = m[w] & fmask[w];
      const std::uint64_t right = m[w] & ~fmask[w];
      lm[w] = left;
      rm[w] = right;
      left_any |= left;
      right_any |= right;
    }
    if (right_any != 0) {
      s.stack.push_back(encode(flat_right_[ni], depth + 1, 1));
    }
    if (left_any != 0) {
      s.stack.push_back(encode(flat_left_[ni], depth + 1, 0));
    }
  }
  return true;
}

#ifdef LYNCEUS_SIMD_AVX2

static bool lynceus_avx2_supported() noexcept {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}

/// The level-sync routing loop with explicit AVX2 gathers — 8 rows per
/// step, one compare/blend per row per level. Routing is pure integer
/// work, so the landed leaves (and every float read from them) are
/// bitwise identical to the scalar sweep. Compiled via the `target`
/// attribute so the rest of this TU stays baseline-ISA; callers must
/// check lynceus_avx2_supported() first.
__attribute__((target("avx2"))) static void route_levels_avx2(
    const std::uint16_t* codes, const std::uint32_t* row_base, std::size_t n,
    unsigned depth, const std::int32_t* feat, const std::int32_t* split,
    const std::int32_t* left, const std::int32_t* right, std::int32_t* cur) {
  const __m256i mask16 = _mm256_set1_epi32(0xFFFF);
  for (unsigned d = 0; d < depth; ++d) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256i vcur =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i));
      const __m256i vfeat = _mm256_i32gather_epi32(feat, vcur, 4);
      const __m256i vsplit = _mm256_i32gather_epi32(split, vcur, 4);
      const __m256i vbase =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row_base + i));
      // 32-bit gather at a 16-bit stride reads one code plus two padding
      // bytes (FeatureMatrix::codes() guarantees the tail pad); mask off
      // the high half.
      const __m256i vcode = _mm256_and_si256(
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(codes),
                                 _mm256_add_epi32(vbase, vfeat), 2),
          mask16);
      const __m256i vleft = _mm256_i32gather_epi32(left, vcur, 4);
      const __m256i vright = _mm256_i32gather_epi32(right, vcur, 4);
      // Go right iff code > split; both fit in 16 bits, so the signed
      // 32-bit compare is exact. A leaf's 0xFFFF threshold never
      // compares less than a code, keeping self-loops parked.
      const __m256i go_right = _mm256_cmpgt_epi32(vcode, vsplit);
      const __m256i vnext = _mm256_blendv_epi8(vleft, vright, go_right);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cur + i), vnext);
    }
    for (; i < n; ++i) {
      const std::int32_t nd = cur[i];
      const std::int32_t c =
          codes[row_base[i] + static_cast<std::uint32_t>(feat[nd])];
      cur[i] = c <= split[nd] ? left[nd] : right[nd];
    }
  }
}

#endif  // LYNCEUS_SIMD_AVX2

void DecisionTree::warm_scratch(const FeatureMatrix& fm, std::size_t n,
                                PredictScratch& s) const {
  // Capacity-warm every batch-route buffer — both the level-sync and the
  // dense-walk set — to the space bound, not just this batch. Scratch is
  // caller-owned (per ensemble, not per thread), and which route a given
  // model takes first can differ between the engines' warm-up pass and
  // steady state; reserving both sets up front makes the first batch with
  // a scratch slot size it for every in-space batch and route.
  const std::size_t cap = std::max(n, fm.rows());
  s.cur.reserve(cap);
  s.row_base.reserve(cap);
  const std::size_t depth_cap =
      2 * (static_cast<std::size_t>(options_.max_depth) + 2);
  s.stack.reserve(depth_cap);
  if (fm.level_mask(0, 0) != nullptr) {
    const std::size_t words = fm.mask_words();
    s.root_mask.reserve(words);
    s.pos_of_row.reserve(fm.rows());
    s.arena.reserve(depth_cap * words);
  }
}

void DecisionTree::route_level_sync(const FeatureMatrix& fm,
                                    const std::uint32_t* rows, std::size_t n,
                                    PredictScratch& s) const {
  s.cur.resize(n);
  std::int32_t* cur = s.cur.data();
  std::fill_n(cur, n, 0);
  if (depth_ == 0) return;  // root-only tree: every row is already home
  const std::uint16_t* codes = fm.codes();
  const std::size_t cols = fm.cols();
#ifdef LYNCEUS_SIMD_AVX2
  if (n >= 8 && lynceus_avx2_supported()) {
    s.row_base.resize(n);
    std::uint32_t* rb = s.row_base.data();
    for (std::size_t i = 0; i < n; ++i) {
      rb[i] = static_cast<std::uint32_t>(
          (rows != nullptr ? rows[i] : i) * cols);
    }
    route_levels_avx2(codes, rb, n, depth_, flat_feature_.data(),
                      flat_split_.data(), flat_left_.data(),
                      flat_right_.data(), cur);
    return;
  }
#endif
  // Branch-free compare/route sweep: no leaf test, no data-dependent
  // branches. The scalar loops read the packed per-node arrays (one
  // 32-bit feature+split load, one 64-bit children load) because the
  // sweep is load-port bound; level 0 is peeled since every row starts
  // at the root, whose fields are loop constants.
  const std::uint32_t* fs = flat_fs_.data();
  const std::uint64_t* lr = flat_lr_.data();
  const std::int32_t f0 = static_cast<std::int32_t>(fs[0] >> 16);
  const std::int32_t s0 = static_cast<std::int32_t>(fs[0] & 0xFFFF);
  const std::int32_t l0 = static_cast<std::int32_t>(lr[0] & 0xFFFFFFFF);
  const std::int32_t r0 = static_cast<std::int32_t>(lr[0] >> 32);
  if (rows == nullptr) {
    std::size_t base0 = 0;
    for (std::size_t i = 0; i < n; ++i, base0 += cols) {
      const std::int32_t c = codes[base0 + static_cast<std::size_t>(f0)];
      cur[i] = c <= s0 ? l0 : r0;
    }
    for (unsigned d = 1; d < depth_; ++d) {
      std::size_t base = 0;
      for (std::size_t i = 0; i < n; ++i, base += cols) {
        const std::int32_t nd = cur[i];
        const std::uint32_t f = fs[nd];
        const std::uint64_t ch = lr[nd];
        const std::int32_t c = codes[base + (f >> 16)];
        cur[i] = static_cast<std::int32_t>(
            c <= static_cast<std::int32_t>(f & 0xFFFF)
                ? (ch & 0xFFFFFFFF)
                : (ch >> 32));
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t c =
          codes[static_cast<std::size_t>(rows[i]) * cols +
                static_cast<std::size_t>(f0)];
      cur[i] = c <= s0 ? l0 : r0;
    }
    for (unsigned d = 1; d < depth_; ++d) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t nd = cur[i];
        const std::uint32_t f = fs[nd];
        const std::uint64_t ch = lr[nd];
        const std::int32_t c =
            codes[static_cast<std::size_t>(rows[i]) * cols + (f >> 16)];
        cur[i] = static_cast<std::int32_t>(
            c <= static_cast<std::int32_t>(f & 0xFFFF)
                ? (ch & 0xFFFFFFFF)
                : (ch >> 32));
      }
    }
  }
}

void DecisionTree::predict_batch(const FeatureMatrix& fm,
                                 const std::uint32_t* rows, std::size_t n,
                                 float* out_value, float* out_variance,
                                 PredictScratch* scratch) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict_batch: not fitted");
  }
  if (n == 0) return;
  PredictScratch local;
  PredictScratch& s = scratch != nullptr ? *scratch : local;
  warm_scratch(fm, n, s);
  const bool dense =
      out_variance != nullptr
          ? dense_walk(fm, rows, n, s,
                       [&](std::uint32_t pos, std::size_t nd) {
                         out_value[pos] = flat_value_[nd];
                         out_variance[pos] = flat_variance_[nd];
                       })
          : dense_walk(fm, rows, n, s,
                       [&](std::uint32_t pos, std::size_t nd) {
                         out_value[pos] = flat_value_[nd];
                       });
  if (dense) return;
  route_level_sync(fm, rows, n, s);
  const std::int32_t* cur = s.cur.data();
  const float* value = flat_value_.data();
  if (out_variance != nullptr) {
    const float* variance = flat_variance_.data();
    for (std::size_t i = 0; i < n; ++i) {
      out_value[i] = value[cur[i]];
      out_variance[i] = variance[cur[i]];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) out_value[i] = value[cur[i]];
  }
}

void DecisionTree::accumulate_batch(const FeatureMatrix& fm,
                                    const std::uint32_t* rows, std::size_t n,
                                    double* sum, double* sumsq,
                                    double* var_sum,
                                    PredictScratch* scratch) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::accumulate_batch: not fitted");
  }
  if (n == 0) return;
  PredictScratch local;
  PredictScratch& s = scratch != nullptr ? *scratch : local;
  warm_scratch(fm, n, s);
  const bool dense =
      var_sum != nullptr
          ? dense_walk(fm, rows, n, s,
                       [&](std::uint32_t pos, std::size_t nd) {
                         const double v = flat_value_[nd];
                         sum[pos] += v;
                         sumsq[pos] += v * v;
                         var_sum[pos] += flat_variance_[nd];
                       })
          : dense_walk(fm, rows, n, s,
                       [&](std::uint32_t pos, std::size_t nd) {
                         const double v = flat_value_[nd];
                         sum[pos] += v;
                         sumsq[pos] += v * v;
                       });
  if (dense) return;
  route_level_sync(fm, rows, n, s);
  // Accumulate straight from the flat leaf arrays — same float source,
  // same per-row order as the scalar loop, no intermediate buffers.
  const std::int32_t* cur = s.cur.data();
  const float* value = flat_value_.data();
  if (var_sum != nullptr) {
    const float* variance = flat_variance_.data();
    for (std::size_t i = 0; i < n; ++i) {
      const double v = value[cur[i]];
      sum[i] += v;
      sumsq[i] += v * v;
      var_sum[i] += variance[cur[i]];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const double v = value[cur[i]];
      sum[i] += v;
      sumsq[i] += v * v;
    }
  }
}

void DecisionTree::save_state(util::JsonWriter& w) const {
  if (!fitted()) {
    throw std::logic_error("DecisionTree::save_state: not fitted");
  }
  w.begin_object();
  w.key("depth").value(static_cast<std::uint64_t>(depth_));
  w.key("left").begin_array();
  for (const Node& n : nodes_) w.value(static_cast<std::int64_t>(n.left));
  w.end_array();
  w.key("right").begin_array();
  for (const Node& n : nodes_) w.value(static_cast<std::int64_t>(n.right));
  w.end_array();
  w.key("feature").begin_array();
  for (const Node& n : nodes_) w.value(static_cast<std::int64_t>(n.feature));
  w.end_array();
  w.key("split").begin_array();
  for (const Node& n : nodes_) {
    w.value(static_cast<std::uint64_t>(n.split_code));
  }
  w.end_array();
  // float → double is exact; value_exact round-trips the double, and the
  // load-side narrowing back to float recovers the original bit pattern.
  w.key("value").begin_array();
  for (const Node& n : nodes_) w.value_exact(static_cast<double>(n.value));
  w.end_array();
  w.key("variance").begin_array();
  for (const Node& n : nodes_) {
    w.value_exact(static_cast<double>(n.variance));
  }
  w.end_array();
  w.key("inc").begin_object();
  w.key("enabled").value(inc_enabled_);
  w.key("reserve").value(static_cast<std::uint64_t>(inc_reserve_));
  w.key("base").value(static_cast<std::uint64_t>(inc_base_));
  w.key("rows").begin_array();
  for (std::uint32_t r : inc_rows_) w.value(static_cast<std::uint64_t>(r));
  w.end_array();
  w.key("y").begin_array();
  for (double y : inc_y_) w.value_exact(y);
  w.end_array();
  w.key("leaf_of").begin_array();
  for (std::int32_t l : leaf_of_) w.value(static_cast<std::int64_t>(l));
  w.end_array();
  w.key("node_depth").begin_array();
  for (std::uint32_t d : node_depth_) {
    w.value(static_cast<std::uint64_t>(d));
  }
  w.end_array();
  w.end_object();
  w.end_object();
}

void DecisionTree::load_state(const util::JsonValue& v) {
  const util::JsonValue& left = v.at("left");
  const util::JsonValue& right = v.at("right");
  const util::JsonValue& feature = v.at("feature");
  const util::JsonValue& split = v.at("split");
  const util::JsonValue& value = v.at("value");
  const util::JsonValue& variance = v.at("variance");
  const std::size_t n = left.size();
  if (n == 0 || right.size() != n || feature.size() != n ||
      split.size() != n || value.size() != n || variance.size() != n) {
    throw std::runtime_error(
        "DecisionTree::load_state: inconsistent node arrays");
  }
  nodes_.clear();
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Node node;
    node.left = static_cast<std::int32_t>(left.at(i).as_int());
    node.right = static_cast<std::int32_t>(right.at(i).as_int());
    node.feature = static_cast<std::int16_t>(feature.at(i).as_int());
    node.split_code = static_cast<std::uint16_t>(split.at(i).as_uint());
    node.value = static_cast<float>(value.at(i).as_double());
    node.variance = static_cast<float>(variance.at(i).as_double());
    if (node.feature != kLeaf &&
        (node.left < 0 || node.right < 0 ||
         node.left >= static_cast<std::int32_t>(n) ||
         node.right >= static_cast<std::int32_t>(n))) {
      throw std::runtime_error(
          "DecisionTree::load_state: child index out of range");
    }
    nodes_.push_back(node);
  }
  depth_ = static_cast<unsigned>(v.at("depth").as_uint());

  const util::JsonValue& inc = v.at("inc");
  inc_enabled_ = inc.at("enabled").as_bool();
  inc_reserve_ = static_cast<std::size_t>(inc.at("reserve").as_uint());
  inc_base_ = static_cast<std::size_t>(inc.at("base").as_uint());
  inc_rows_.clear();
  for (const util::JsonValue& r : inc.at("rows").items()) {
    inc_rows_.push_back(static_cast<std::uint32_t>(r.as_uint()));
  }
  inc_y_.clear();
  for (const util::JsonValue& y : inc.at("y").items()) {
    inc_y_.push_back(y.as_double());
  }
  leaf_of_.clear();
  for (const util::JsonValue& l : inc.at("leaf_of").items()) {
    leaf_of_.push_back(static_cast<std::int32_t>(l.as_int()));
  }
  node_depth_.clear();
  for (const util::JsonValue& d : inc.at("node_depth").items()) {
    node_depth_.push_back(static_cast<std::uint32_t>(d.as_uint()));
  }
  if (inc_rows_.size() != inc_y_.size() ||
      inc_rows_.size() != leaf_of_.size()) {
    throw std::runtime_error(
        "DecisionTree::load_state: inconsistent membership arrays");
  }
  if (!node_depth_.empty() && node_depth_.size() != nodes_.size()) {
    throw std::runtime_error(
        "DecisionTree::load_state: node_depth/nodes mismatch");
  }
  // Mirror assign_fitted's reservation so post-load appends behave like
  // post-assign ones (capacity only; appends remain correct regardless).
  if (inc_enabled_) {
    if (inc_base_ == 0) inc_base_ = inc_rows_.size();
    if (inc_base_ > 0) reserve_incremental(inc_base_);
  }
  rebuild_flat();
}

}  // namespace lynceus::model

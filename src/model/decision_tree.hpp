#pragma once

/// \file decision_tree.hpp
/// CART-style regression tree over discrete (level-coded) features.
///
/// This is the base learner of the bagging ensemble (paper §3: "a bagging
/// ensemble of decision trees"; §5.2: "a bagging ensemble of 10 random
/// trees"). "Random" follows the Weka RandomTree convention: at every split
/// a random subset of features is considered.
///
/// Split search exploits the discreteness of the configuration space: for
/// each candidate feature, per-level (count, sum) statistics are
/// accumulated in one pass and every threshold between adjacent levels is
/// scored by variance reduction — O(n·d + levels·d) per node, no sorting.
/// This matters: Lynceus refits the ensemble for every Gauss–Hermite branch
/// of every simulated exploration path, so tree fitting dominates the
/// optimizer's decision time. The fit scratch is owned by the tree and
/// reused across refits, so a refit at steady state performs no heap
/// allocation.
///
/// Batched prediction contract: predict_batch() routes a whole row list
/// through the tree as a *frontier* — the row list is partitioned at every
/// split, so each node is visited exactly once and feature codes are read
/// in bulk per node, instead of chasing root-to-leaf pointers once per row.
/// The leaf a row lands in (and hence its value/variance) is identical to
/// the scalar predict()/predict_stats() path; callers may mix the two
/// freely. After warm-up (thread-local scratch sized to the largest batch)
/// predict_batch performs no heap allocation.

#include <cstdint>
#include <vector>

#include "model/regressor.hpp"
#include "util/rng.hpp"

namespace lynceus::model {

struct TreeOptions {
  /// Maximum tree depth (root = 0).
  unsigned max_depth = 30;
  /// Minimum number of samples required to attempt a split.
  unsigned min_samples_split = 2;
  /// Number of features considered per split; 0 means "all features"
  /// (plain CART). The Weka RandomTree default, used by the Lynceus
  /// ensemble, is ⌈log2(d)⌉ + 1.
  unsigned features_per_split = 0;
  /// Whether leaves record the training-target variance (needed only for
  /// the ensemble's TotalVariance mode). When false, predict_stats()
  /// reports variance 0 and fitting skips one pass per leaf — measurable,
  /// since the lookahead engine refits thousands of trees per decision.
  bool leaf_variance = true;
};

class DecisionTree {
 public:
  explicit DecisionTree(TreeOptions options = {});

  /// Fits on the (possibly repeated) rows. `rows.size() == y.size() > 0`.
  void fit(const FeatureMatrix& fm, const std::vector<std::uint32_t>& rows,
           const std::vector<double>& y, util::Rng& rng);

  /// Point prediction (mean of the leaf reached by `row`).
  [[nodiscard]] double predict(const FeatureMatrix& fm,
                               std::uint32_t row) const;

  /// Leaf statistics for `row`: the leaf's training mean and the (biased)
  /// variance of the training targets that fell into it. Enables the
  /// SMAC-style law-of-total-variance combination in the ensemble.
  struct LeafStats {
    double mean = 0.0;
    double variance = 0.0;
  };
  [[nodiscard]] LeafStats predict_stats(const FeatureMatrix& fm,
                                        std::uint32_t row) const;

  /// Frontier-batched leaf lookup (see file comment). For each i in
  /// [0, n): writes the leaf mean of row `rows[i]` to `out_value[i]` and,
  /// when `out_variance` is non-null, the leaf variance to
  /// `out_variance[i]`. `rows == nullptr` means the identity batch
  /// (row i = i), which is how predict-all over a whole FeatureMatrix
  /// avoids materializing an index vector.
  void predict_batch(const FeatureMatrix& fm, const std::uint32_t* rows,
                     std::size_t n, float* out_value,
                     float* out_variance = nullptr) const;

  /// Ensemble-fused batch: for each i in [0, n), with v the leaf mean of
  /// row `rows[i]` (as a double), performs `sum[i] += v` and
  /// `sumsq[i] += v*v`, plus `var_sum[i] += leaf variance` when `var_sum`
  /// is non-null. Exactly predict_batch followed by the caller's
  /// accumulation loop — same leaves, same per-row operation order — in a
  /// single walk, which is how BaggingEnsemble avoids materializing
  /// per-tree outputs.
  void accumulate_batch(const FeatureMatrix& fm, const std::uint32_t* rows,
                        std::size_t n, double* sum, double* sumsq,
                        double* var_sum) const;

  /// --- Incremental refit support (used by BaggingEnsemble's
  /// --- append_and_update; see core/lookahead.hpp for the engine-level
  /// --- determinism contract).

  /// Turns membership capture on: subsequent fit() calls record the
  /// training multiset (rows, y), each sample's leaf and per-node depths,
  /// and reserve buffers so that up to `reserve_extra`
  /// append_incremental() calls after a fit perform no heap allocation.
  void set_incremental(bool on, std::size_t reserve_extra);

  /// True when the tree holds captured membership (fitted while capture
  /// was on), i.e. append_incremental() may be called.
  [[nodiscard]] bool has_membership() const noexcept {
    return !inc_rows_.empty() && node_depth_.size() == nodes_.size();
  }

  /// Appends one training sample to the captured membership and updates
  /// the fitted tree in place: the sample is routed to its leaf, and
  /// either the leaf's (mean, variance) are recomputed over its updated
  /// member set, or — when the leaf is splittable (>= min_samples_split
  /// members below max_depth) — the leaf's subtree is re-split from
  /// scratch over exactly those members, with the same variance-reduction
  /// search and `rng`-driven feature subsetting as fit(). Split decisions
  /// of interior nodes *above* the leaf are left as fitted; this is the
  /// documented approximation of the incremental path (the differential
  /// tests pin its agreement with from-scratch fits). Deterministic given
  /// (fitted state, rng state). Requires has_membership().
  void append_incremental(const FeatureMatrix& fm, std::uint32_t row,
                          double y, util::Rng& rng);

  /// Copies `src`'s fitted state — nodes, depth, captured membership —
  /// into this tree, reusing this tree's buffers (allocation-free once
  /// capacity covers `src`; the engines call this once per simulated
  /// branch). Options must match; the fit scratch is not copied.
  void assign_fitted(const DecisionTree& src);

  /// Serializes the fitted state — node arrays, depth, incremental
  /// capture configuration and membership — as one JSON object
  /// (BaggingEnsemble::save_fit embeds one per tree). Leaf values and
  /// variances are written with round-trip precision, so a load_state()ed
  /// tree predicts bitwise identically. Requires fitted().
  void save_state(util::JsonWriter& w) const;

  /// Restores a save_state() object into this tree (options are NOT
  /// serialized — the same-factory contract of assign_fitted applies).
  /// Throws std::runtime_error on a malformed or inconsistent state.
  void load_state(const util::JsonValue& v);

  [[nodiscard]] bool fitted() const noexcept { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] unsigned depth() const noexcept { return depth_; }

  [[nodiscard]] const TreeOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Compact node: leaves have `feature == kLeaf`.
  struct Node {
    std::int32_t left = -1;   ///< index of the <=-side child
    std::int32_t right = -1;  ///< index of the >-side child
    std::int16_t feature = kLeaf;
    std::uint16_t split_code = 0;  ///< go left iff code(row) <= split_code
    float value = 0.0F;            ///< leaf mean (valid for leaves)
    float variance = 0.0F;         ///< leaf target variance (leaves only)
  };
  static constexpr std::int16_t kLeaf = -1;

  /// Fit-time scratch, owned by the tree so consecutive refits (the
  /// lookahead engine refits thousands of times per decision) reuse the
  /// buffers instead of reallocating them.
  struct FitScratch {
    std::vector<std::uint32_t> idx;  ///< row ids, partitioned in place
    std::vector<double> y;           ///< targets, kept parallel to idx
    std::vector<std::uint32_t> cnt;  ///< per-level counts (split search)
    std::vector<double> sum;         ///< per-level target sums
    std::vector<std::uint16_t> feature_order;  ///< feature-subset sampling
  };

  struct BuildCtx;
  std::int32_t build(BuildCtx& ctx, std::size_t begin, std::size_t end,
                     unsigned depth);

  /// Dense batch path: routes the whole batch through the tree as row
  /// bitmasks intersected with the FeatureMatrix's precomputed level masks
  /// (a split costs mask_words() word-ANDs instead of one comparison per
  /// row), invoking `leaf(batch_position, node)` for every routed row.
  /// Returns false — caller falls back to the frontier partition — when
  /// masks are unavailable, the batch is sparse relative to the space, or
  /// `rows` contains duplicates.
  template <class LeafFn>
  bool dense_walk(const FeatureMatrix& fm, const std::uint32_t* rows,
                  std::size_t n, const LeafFn& leaf) const;

  /// The frontier-partition batch path (always available).
  void predict_frontier(const FeatureMatrix& fm, const std::uint32_t* rows,
                        std::size_t n, float* out_value,
                        float* out_variance) const;

  /// Leaf index reached by `row` (the scalar predict() descent).
  [[nodiscard]] std::int32_t find_leaf(const FeatureMatrix& fm,
                                       std::uint32_t row) const noexcept;

  /// Pre-reserves nodes/membership/scratch capacity so `inc_reserve_`
  /// appends on a fit of `base_samples` samples never reallocate.
  void reserve_incremental(std::size_t base_samples);

  TreeOptions options_;
  std::vector<Node> nodes_;
  unsigned depth_ = 0;
  FitScratch scratch_;

  bool inc_enabled_ = false;
  std::size_t inc_reserve_ = 0;
  std::size_t inc_base_ = 0;  ///< fit-time sample count (reserve anchor)
  // Captured membership (incremental mode only): the fitted training
  // multiset, each sample's current leaf, and every node's depth (the
  // re-split trigger needs both).
  std::vector<std::uint32_t> inc_rows_;
  std::vector<double> inc_y_;
  std::vector<std::int32_t> leaf_of_;
  std::vector<std::uint32_t> node_depth_;
  // append_incremental gather scratch (the updated leaf's members).
  std::vector<std::uint32_t> gather_rows_;
  std::vector<double> gather_y_;
};

}  // namespace lynceus::model

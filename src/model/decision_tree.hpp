#pragma once

/// \file decision_tree.hpp
/// CART-style regression tree over discrete (level-coded) features.
///
/// This is the base learner of the bagging ensemble (paper §3: "a bagging
/// ensemble of decision trees"; §5.2: "a bagging ensemble of 10 random
/// trees"). "Random" follows the Weka RandomTree convention: at every split
/// a random subset of features is considered.
///
/// Split search exploits the discreteness of the configuration space: for
/// each candidate feature, per-level (count, sum) statistics are
/// accumulated in one pass and every threshold between adjacent levels is
/// scored by variance reduction — O(n·d + levels·d) per node, no sorting.
/// This matters: Lynceus refits the ensemble for every Gauss–Hermite branch
/// of every simulated exploration path, so tree fitting dominates the
/// optimizer's decision time. The fit scratch is owned by the tree and
/// reused across refits, so a refit at steady state performs no heap
/// allocation.
///
/// Batched prediction: flat-layout determinism contract
/// -----------------------------------------------------
/// A fitted tree maintains a structure-of-arrays mirror of its nodes —
/// contiguous feature / threshold-code / left-child / right-child /
/// leaf-value / leaf-variance arrays — in which leaves *self-loop*
/// (left == right == self, threshold == 0xFFFF), so batch routing is a
/// branch-free level-synchronous sweep: every row advances one level per
/// pass, rows already at a leaf spin in place, and after depth() passes
/// each row sits at exactly the leaf the scalar predict() descent reaches.
/// predict_batch()/accumulate_batch() use two routes over those arrays:
///   * a dense level-mask walk (batch covers most of the space and the
///     FeatureMatrix has precomputed level masks) that intersects row
///     bitmasks per split, and
///   * the level-synchronous sweep (sparse batches, duplicate ids, or
///     mask-less spaces), whose per-row compare/route loop the compiler
///     auto-vectorizes (explicit AVX2 gathers behind LYNCEUS_SIMD, with a
///     runtime CPU check; identical integer routing either way).
///
/// What is bit-pinned: the leaf each row lands in, the float leaf
/// value/variance read from it, and the per-row accumulation order of
/// accumulate_batch — all byte-identical to the scalar predict() /
/// predict_stats() path, across routes, build flags and toolchains (the
/// routing is pure integer compare/select; no FP reassociation anywhere).
/// Callers may mix scalar and batch entry points freely.
///
/// When the flat layout is rebuilt: at the end of fit(), load_state() and
/// assign_fitted(), and after every append_incremental() (appends mutate
/// the node array in place, so the mirror is refreshed from it; capacity
/// is pre-reserved by the incremental reservation, keeping appends
/// allocation-free). The AoS node array remains the single source of
/// truth for building, serialization and the scalar descent.
///
/// Scratch ownership: batch entry points take a caller-owned
/// PredictScratch (BaggingEnsemble owns one per predict chunk); passing
/// nullptr falls back to function-local scratch that allocates per call.
/// With a caller-owned scratch, batches at steady state (warmed to the
/// largest batch size) perform no heap allocation.

#include <cstdint>
#include <vector>

#include "model/regressor.hpp"
#include "util/rng.hpp"

namespace lynceus::model {

/// Caller-owned scratch for the batch prediction entry points (file
/// comment, "Scratch ownership"). Replaces the former thread_local
/// buffers: a thread_local copy per worker thread grew to the largest
/// batch ever seen and was never released; this struct is owned by the
/// predicting ensemble (one slot per predict chunk) and freed with it.
/// Buffers only grow, so steady-state batches are allocation-free once
/// warmed. One scratch must not be used by two concurrent batch calls.
struct PredictScratch {
  // Level-synchronous sweep: current node per batch row, plus the
  // precomputed row*cols code offsets the SIMD gather kernel consumes.
  std::vector<std::int32_t> cur;
  std::vector<std::uint32_t> row_base;
  // Dense level-mask walk.
  std::vector<std::uint64_t> root_mask;
  std::vector<std::uint32_t> pos_of_row;
  std::vector<std::uint64_t> arena;
  std::vector<std::int64_t> stack;
  // Ensemble-level per-row accumulators and id scratch
  // (BaggingEnsemble::predict_rows / predict_all).
  std::vector<double> sum;
  std::vector<double> sumsq;
  std::vector<double> var_sum;
  std::vector<std::uint32_t> ids;
};

struct TreeOptions {
  /// Maximum tree depth (root = 0).
  unsigned max_depth = 30;
  /// Minimum number of samples required to attempt a split.
  unsigned min_samples_split = 2;
  /// Number of features considered per split; 0 means "all features"
  /// (plain CART). The Weka RandomTree default, used by the Lynceus
  /// ensemble, is ⌈log2(d)⌉ + 1.
  unsigned features_per_split = 0;
  /// Whether leaves record the training-target variance (needed only for
  /// the ensemble's TotalVariance mode). When false, predict_stats()
  /// reports variance 0 and fitting skips one pass per leaf — measurable,
  /// since the lookahead engine refits thousands of trees per decision.
  bool leaf_variance = true;
};

class DecisionTree {
 public:
  explicit DecisionTree(TreeOptions options = {});

  /// Fits on the (possibly repeated) rows. `rows.size() == y.size() > 0`.
  void fit(const FeatureMatrix& fm, const std::vector<std::uint32_t>& rows,
           const std::vector<double>& y, util::Rng& rng);

  /// Point prediction (mean of the leaf reached by `row`).
  [[nodiscard]] double predict(const FeatureMatrix& fm,
                               std::uint32_t row) const;

  /// Leaf statistics for `row`: the leaf's training mean and the (biased)
  /// variance of the training targets that fell into it. Enables the
  /// SMAC-style law-of-total-variance combination in the ensemble.
  struct LeafStats {
    double mean = 0.0;
    double variance = 0.0;
  };
  [[nodiscard]] LeafStats predict_stats(const FeatureMatrix& fm,
                                        std::uint32_t row) const;

  /// Batched leaf lookup over the flat layout (see file comment). For
  /// each i in [0, n): writes the leaf mean of row `rows[i]` to
  /// `out_value[i]` and, when `out_variance` is non-null, the leaf
  /// variance to `out_variance[i]`. `rows == nullptr` means the identity
  /// batch (row i = i), which is how predict-all over a whole
  /// FeatureMatrix avoids materializing an index vector. `scratch` is the
  /// caller-owned workspace; nullptr uses function-local scratch (one
  /// allocation per call).
  void predict_batch(const FeatureMatrix& fm, const std::uint32_t* rows,
                     std::size_t n, float* out_value,
                     float* out_variance = nullptr,
                     PredictScratch* scratch = nullptr) const;

  /// Ensemble-fused batch: for each i in [0, n), with v the leaf mean of
  /// row `rows[i]` (as a double), performs `sum[i] += v` and
  /// `sumsq[i] += v*v`, plus `var_sum[i] += leaf variance` when `var_sum`
  /// is non-null. Exactly predict_batch followed by the caller's
  /// accumulation loop — same leaves, same per-row operation order — in a
  /// single walk, which is how BaggingEnsemble avoids materializing
  /// per-tree outputs.
  void accumulate_batch(const FeatureMatrix& fm, const std::uint32_t* rows,
                        std::size_t n, double* sum, double* sumsq,
                        double* var_sum,
                        PredictScratch* scratch = nullptr) const;

  /// --- Incremental refit support (used by BaggingEnsemble's
  /// --- append_and_update; see core/lookahead.hpp for the engine-level
  /// --- determinism contract).

  /// Turns membership capture on: subsequent fit() calls record the
  /// training multiset (rows, y), each sample's leaf and per-node depths,
  /// and reserve buffers so that up to `reserve_extra`
  /// append_incremental() calls after a fit perform no heap allocation.
  void set_incremental(bool on, std::size_t reserve_extra);

  /// True when the tree holds captured membership (fitted while capture
  /// was on), i.e. append_incremental() may be called.
  [[nodiscard]] bool has_membership() const noexcept {
    return !inc_rows_.empty() && node_depth_.size() == nodes_.size();
  }

  /// Appends one training sample to the captured membership and updates
  /// the fitted tree in place: the sample is routed to its leaf, and
  /// either the leaf's (mean, variance) are recomputed over its updated
  /// member set, or — when the leaf is splittable (>= min_samples_split
  /// members below max_depth) — the leaf's subtree is re-split from
  /// scratch over exactly those members, with the same variance-reduction
  /// search and `rng`-driven feature subsetting as fit(). Split decisions
  /// of interior nodes *above* the leaf are left as fitted; this is the
  /// documented approximation of the incremental path (the differential
  /// tests pin its agreement with from-scratch fits). Deterministic given
  /// (fitted state, rng state). Requires has_membership().
  void append_incremental(const FeatureMatrix& fm, std::uint32_t row,
                          double y, util::Rng& rng);

  /// Copies `src`'s fitted state — nodes, depth, captured membership —
  /// into this tree, reusing this tree's buffers (allocation-free once
  /// capacity covers `src`; the engines call this once per simulated
  /// branch). Options must match; the fit scratch is not copied.
  void assign_fitted(const DecisionTree& src);

  /// Serializes the fitted state — node arrays, depth, incremental
  /// capture configuration and membership — as one JSON object
  /// (BaggingEnsemble::save_fit embeds one per tree). Leaf values and
  /// variances are written with round-trip precision, so a load_state()ed
  /// tree predicts bitwise identically. Requires fitted().
  void save_state(util::JsonWriter& w) const;

  /// Restores a save_state() object into this tree (options are NOT
  /// serialized — the same-factory contract of assign_fitted applies).
  /// Throws std::runtime_error on a malformed or inconsistent state.
  void load_state(const util::JsonValue& v);

  [[nodiscard]] bool fitted() const noexcept { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] unsigned depth() const noexcept { return depth_; }

  [[nodiscard]] const TreeOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Compact node: leaves have `feature == kLeaf`.
  struct Node {
    std::int32_t left = -1;   ///< index of the <=-side child
    std::int32_t right = -1;  ///< index of the >-side child
    std::int16_t feature = kLeaf;
    std::uint16_t split_code = 0;  ///< go left iff code(row) <= split_code
    float value = 0.0F;            ///< leaf mean (valid for leaves)
    float variance = 0.0F;         ///< leaf target variance (leaves only)
  };
  static constexpr std::int16_t kLeaf = -1;

  /// Fit-time scratch, owned by the tree so consecutive refits (the
  /// lookahead engine refits thousands of times per decision) reuse the
  /// buffers instead of reallocating them.
  struct FitScratch {
    std::vector<std::uint32_t> idx;  ///< row ids, partitioned in place
    std::vector<double> y;           ///< targets, kept parallel to idx
    std::vector<std::uint32_t> cnt;  ///< per-level counts (split search)
    std::vector<double> sum;         ///< per-level target sums
    std::vector<std::uint16_t> feature_order;  ///< feature-subset sampling
  };

  struct BuildCtx;
  std::int32_t build(BuildCtx& ctx, std::size_t begin, std::size_t end,
                     unsigned depth);

  /// Dense batch path: routes the whole batch through the flat arrays as
  /// row bitmasks intersected with the FeatureMatrix's precomputed level
  /// masks (a split costs mask_words() word-ANDs instead of one comparison
  /// per row), invoking `leaf(batch_position, node_index)` for every
  /// routed row. Returns false — caller falls back to the level-sync
  /// sweep — when masks are unavailable, the batch is sparse relative to
  /// the space, or `rows` contains duplicates.
  template <class LeafFn>
  bool dense_walk(const FeatureMatrix& fm, const std::uint32_t* rows,
                  std::size_t n, PredictScratch& s, const LeafFn& leaf) const;

  /// Capacity-warms every batch-route buffer of `s` (both the dense-walk
  /// and level-sync sets) to the space bound, so the first batch call with
  /// a scratch slot sizes it for every in-space batch regardless of which
  /// route later calls take (steady state stays allocation-free even when
  /// the route flips after warm-up).
  void warm_scratch(const FeatureMatrix& fm, std::size_t n,
                    PredictScratch& s) const;

  /// Level-synchronous sweep (always available): after the call,
  /// `s.cur[i]` is the index of the leaf row `rows[i]` lands in (see file
  /// comment — leaves self-loop, so depth() passes suffice).
  void route_level_sync(const FeatureMatrix& fm, const std::uint32_t* rows,
                        std::size_t n, PredictScratch& s) const;

  /// Rebuilds the flat SoA mirror from `nodes_` (file comment, "When the
  /// flat layout is rebuilt").
  void rebuild_flat();
  // Refreshes one slot of the flat mirror from nodes_[i] (routing fields,
  // packed words, leaf statistics). rebuild_flat() is this over all nodes;
  // append_incremental uses it to patch only the slots a re-split touched.
  void refresh_flat_node(std::size_t i);

  /// Leaf index reached by `row` (the scalar predict() descent).
  [[nodiscard]] std::int32_t find_leaf(const FeatureMatrix& fm,
                                       std::uint32_t row) const noexcept;

  /// Pre-reserves nodes/membership/scratch capacity so `inc_reserve_`
  /// appends on a fit of `base_samples` samples never reallocate.
  void reserve_incremental(std::size_t base_samples);

  TreeOptions options_;
  std::vector<Node> nodes_;
  unsigned depth_ = 0;
  FitScratch scratch_;

  // Flat SoA mirror of `nodes_` (file comment). Leaves self-loop:
  // flat_left_[i] == flat_right_[i] == i and flat_split_[i] == 0xFFFF, so
  // the level-sync route needs no leaf test. 32-bit lanes throughout so
  // the SIMD path gathers without width conversions.
  std::vector<std::int32_t> flat_feature_;
  std::vector<std::int32_t> flat_split_;
  std::vector<std::int32_t> flat_left_;
  std::vector<std::int32_t> flat_right_;
  std::vector<float> flat_value_;
  std::vector<float> flat_variance_;
  // Packed duplicates of the four routing arrays, one load each instead
  // of two: fs = (feature << 16) | split_code, lr = left | (right << 32).
  // The scalar level-sync sweep is load-port bound, so halving its loads
  // is what makes the sweep beat the per-row walk on tiny spaces (scout
  // is 69 rows); the AVX2 kernel keeps gathering the unpacked arrays.
  std::vector<std::uint32_t> flat_fs_;
  std::vector<std::uint64_t> flat_lr_;

  bool inc_enabled_ = false;
  std::size_t inc_reserve_ = 0;
  std::size_t inc_base_ = 0;  ///< fit-time sample count (reserve anchor)
  // Captured membership (incremental mode only): the fitted training
  // multiset, each sample's current leaf, and every node's depth (the
  // re-split trigger needs both).
  std::vector<std::uint32_t> inc_rows_;
  std::vector<double> inc_y_;
  std::vector<std::int32_t> leaf_of_;
  std::vector<std::uint32_t> node_depth_;
  // append_incremental gather scratch (the updated leaf's members).
  std::vector<std::uint32_t> gather_rows_;
  std::vector<double> gather_y_;
};

}  // namespace lynceus::model

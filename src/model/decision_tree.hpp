#pragma once

/// \file decision_tree.hpp
/// CART-style regression tree over discrete (level-coded) features.
///
/// This is the base learner of the bagging ensemble (paper §3: "a bagging
/// ensemble of decision trees"; §5.2: "a bagging ensemble of 10 random
/// trees"). "Random" follows the Weka RandomTree convention: at every split
/// a random subset of features is considered.
///
/// Split search exploits the discreteness of the configuration space: for
/// each candidate feature, per-level (count, sum) statistics are
/// accumulated in one pass and every threshold between adjacent levels is
/// scored by variance reduction — O(n·d + levels·d) per node, no sorting.
/// This matters: Lynceus refits the ensemble for every Gauss–Hermite branch
/// of every simulated exploration path, so tree fitting dominates the
/// optimizer's decision time.

#include <cstdint>
#include <vector>

#include "model/regressor.hpp"
#include "util/rng.hpp"

namespace lynceus::model {

struct TreeOptions {
  /// Maximum tree depth (root = 0).
  unsigned max_depth = 30;
  /// Minimum number of samples required to attempt a split.
  unsigned min_samples_split = 2;
  /// Number of features considered per split; 0 means "all features"
  /// (plain CART). The Weka RandomTree default, used by the Lynceus
  /// ensemble, is ⌈log2(d)⌉ + 1.
  unsigned features_per_split = 0;
};

class DecisionTree {
 public:
  explicit DecisionTree(TreeOptions options = {});

  /// Fits on the (possibly repeated) rows. `rows.size() == y.size() > 0`.
  void fit(const FeatureMatrix& fm, const std::vector<std::uint32_t>& rows,
           const std::vector<double>& y, util::Rng& rng);

  /// Point prediction (mean of the leaf reached by `row`).
  [[nodiscard]] double predict(const FeatureMatrix& fm,
                               std::uint32_t row) const;

  /// Leaf statistics for `row`: the leaf's training mean and the (biased)
  /// variance of the training targets that fell into it. Enables the
  /// SMAC-style law-of-total-variance combination in the ensemble.
  struct LeafStats {
    double mean = 0.0;
    double variance = 0.0;
  };
  [[nodiscard]] LeafStats predict_stats(const FeatureMatrix& fm,
                                        std::uint32_t row) const;

  [[nodiscard]] bool fitted() const noexcept { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] unsigned depth() const noexcept { return depth_; }

  [[nodiscard]] const TreeOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Compact node: leaves have `feature == kLeaf`.
  struct Node {
    std::int32_t left = -1;   ///< index of the <=-side child
    std::int32_t right = -1;  ///< index of the >-side child
    std::int16_t feature = kLeaf;
    std::uint16_t split_code = 0;  ///< go left iff code(row) <= split_code
    float value = 0.0F;            ///< leaf mean (valid for leaves)
    float variance = 0.0F;         ///< leaf target variance (leaves only)
  };
  static constexpr std::int16_t kLeaf = -1;

  struct BuildCtx;
  std::int32_t build(BuildCtx& ctx, std::size_t begin, std::size_t end,
                     unsigned depth);

  TreeOptions options_;
  std::vector<Node> nodes_;
  unsigned depth_ = 0;
};

}  // namespace lynceus::model

#pragma once

/// \file vm.hpp
/// Virtual-machine type descriptions: the hardware dimension `H` of the
/// paper's configuration tuple 〈N, H, P〉. Each type carries the attributes
/// the synthetic performance models need (compute, memory, network, disk)
/// plus its on-demand hourly price (per-second billing is assumed
/// throughout, as in the paper §2).

#include <cstddef>
#include <string>

namespace lynceus::cloud {

enum class VmFamily { T2, C4, M4, R4, R3, I2 };

enum class VmSize { Small, Medium, Large, XLarge, XXLarge };

[[nodiscard]] std::string to_string(VmFamily family);
[[nodiscard]] std::string to_string(VmSize size);

struct VmType {
  std::string name;          ///< e.g. "t2.xlarge"
  VmFamily family = VmFamily::T2;
  VmSize size = VmSize::Small;
  unsigned vcpus = 1;
  double ram_gb = 1.0;
  double price_per_hour = 0.0;   ///< USD, on-demand
  double net_mbps = 100.0;       ///< sustainable NIC throughput, MB/s
  double cpu_speed = 1.0;        ///< relative per-core speed factor
  double disk_mbps = 100.0;      ///< local storage bandwidth, MB/s

  [[nodiscard]] double ram_per_core() const noexcept {
    return ram_gb / static_cast<double>(vcpus);
  }

  /// Price of running `count` instances for `seconds` (per-second billing).
  [[nodiscard]] double rental_cost(std::size_t count, double seconds) const noexcept {
    return price_per_hour * static_cast<double>(count) * seconds / 3600.0;
  }
};

}  // namespace lynceus::cloud

#pragma once

/// \file dataset.hpp
/// A materialized evaluation dataset: for every configuration of a space,
/// the measured runtime, the cluster's unit price, the resulting monetary
/// cost `C(x) = T(x) · U(x)`, and the deadline Tmax of the optimization
/// problem. This mirrors the paper's methodology (§5.2): "we perform our
/// evaluation via a simulation approach, which uses the performance data
/// previously collected by deploying each job in the configurations we
/// consider".
///
/// Datasets can be built from the synthetic job models (workloads.hpp), or
/// loaded/saved as CSV so users can replay their own measurements.

#include <memory>
#include <string>
#include <vector>

#include "space/config_space.hpp"

namespace lynceus::cloud {

struct Observation {
  double runtime_seconds = 0.0;
  double unit_price_per_hour = 0.0;  ///< whole-cluster rental price, $/h
  bool timed_out = false;            ///< forcefully terminated (TF jobs)

  /// Monetary cost of the run: runtime x unit price (per-second billing).
  [[nodiscard]] double cost() const noexcept {
    return runtime_seconds * unit_price_per_hour / 3600.0;
  }
};

class Dataset {
 public:
  /// `observations` must have exactly one entry per configuration of
  /// `space`. `tmax_seconds <= 0` means "derive Tmax as the median runtime"
  /// (the paper sets the deadline so that roughly half the configurations
  /// satisfy it — §5.2).
  Dataset(std::string job_name,
          std::shared_ptr<const space::ConfigSpace> space,
          std::vector<Observation> observations, double tmax_seconds = 0.0);

  [[nodiscard]] const std::string& job_name() const noexcept { return name_; }
  [[nodiscard]] const space::ConfigSpace& space() const noexcept {
    return *space_;
  }
  [[nodiscard]] std::shared_ptr<const space::ConfigSpace> space_ptr()
      const noexcept {
    return space_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return obs_.size(); }
  [[nodiscard]] const Observation& observation(space::ConfigId id) const {
    return obs_.at(id);
  }

  [[nodiscard]] double runtime(space::ConfigId id) const {
    return obs_.at(id).runtime_seconds;
  }
  [[nodiscard]] double unit_price(space::ConfigId id) const {
    return obs_.at(id).unit_price_per_hour;
  }
  [[nodiscard]] double cost(space::ConfigId id) const {
    return obs_.at(id).cost();
  }

  /// Deadline of the optimization problem.
  [[nodiscard]] double tmax_seconds() const noexcept { return tmax_; }

  /// T(x) <= Tmax.
  [[nodiscard]] bool feasible(space::ConfigId id) const {
    return obs_.at(id).runtime_seconds <= tmax_ && !obs_.at(id).timed_out;
  }

  /// The cheapest feasible configuration (the paper's x*). Throws
  /// std::logic_error if no configuration is feasible.
  [[nodiscard]] space::ConfigId optimal() const;
  [[nodiscard]] double optimal_cost() const;

  /// Mean cost over all configurations (the paper's m̃, used to size the
  /// budget B = N · m̃ · b).
  [[nodiscard]] double mean_cost() const;

  /// Fraction of configurations satisfying the deadline.
  [[nodiscard]] double feasible_fraction() const;

  /// All costs, for distribution plots (Fig. 1a).
  [[nodiscard]] std::vector<double> all_costs() const;

  /// CSV round-trip. The CSV stores one row per configuration: the level
  /// labels, runtime, unit price, and timeout flag. `load_csv` requires the
  /// space the file was saved with (levels are validated against it).
  void save_csv(const std::string& path) const;
  [[nodiscard]] static Dataset load_csv(
      const std::string& path, std::string job_name,
      std::shared_ptr<const space::ConfigSpace> space);

 private:
  std::string name_;
  std::shared_ptr<const space::ConfigSpace> space_;
  std::vector<Observation> obs_;
  double tmax_ = 0.0;
};

}  // namespace lynceus::cloud

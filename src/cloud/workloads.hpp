#pragma once

/// \file workloads.hpp
/// Builders for the three evaluation settings of the paper:
///
///  * TensorFlow (§5.1.1): 3 jobs x 384 configurations over 5 dimensions —
///    learning rate, batch size, training mode (Table 1), VM type, worker
///    count (Table 2). Worker counts are tied to the VM type so that the
///    total VCPU count lies in {8, 16, 32, 48, 64, 80, 96, 112}.
///  * Scout (§5.1.2): 18 Hadoop/Spark jobs over a 69-point 3-D space
///    (families C4/R4/M4, sizes large/xlarge/2xlarge, machine counts
///    4-48 with per-size caps).
///  * CherryPick (§5.1.2): 5 jobs over per-job spaces of 47-72 points
///    (families C4/M4/R3/I2, machine counts 32-112).
///
/// All builders are deterministic given `noise_seed`.

#include <memory>
#include <vector>

#include "cloud/dataset.hpp"
#include "cloud/spark_job.hpp"
#include "cloud/tensorflow_job.hpp"
#include "space/config_space.hpp"

namespace lynceus::cloud {

/// Dimension order of the TensorFlow space:
/// 0 learning_rate, 1 batch, 2 training_mode, 3 vm_type, 4 workers.
[[nodiscard]] std::shared_ptr<const space::ConfigSpace> tensorflow_space();

/// Builds the full 384-point dataset for one TensorFlow job.
[[nodiscard]] Dataset make_tensorflow_dataset(TfModel model,
                                              std::uint64_t noise_seed = 0);

/// All three TensorFlow datasets (Multilayer, CNN, RNN).
[[nodiscard]] std::vector<Dataset> make_tensorflow_datasets(
    std::uint64_t noise_seed = 0);

/// Dimension order of the Scout space:
/// 0 vm_family, 1 vm_size, 2 machine count.
/// The paper reports 69 points; the stated grid yields 72, so the default
/// space caps 2xlarge clusters at 10 machines (removing 3 points) to match
/// the published cardinality. Pass `exact_grid = true` for the 72-point
/// literal reading. See DESIGN.md §2.
[[nodiscard]] std::shared_ptr<const space::ConfigSpace> scout_space(
    bool exact_grid = false);

[[nodiscard]] Dataset make_scout_dataset(const SparkJobSpec& spec,
                                         std::uint64_t noise_seed = 0);

/// All 18 Scout datasets.
[[nodiscard]] std::vector<Dataset> make_scout_datasets(
    std::uint64_t noise_seed = 0);

/// Per-job CherryPick space: the 72-cell grid (4 families x 3 sizes x 6
/// counts) reduced to `cardinality` points by a deterministic mask seeded
/// by the job name (the paper reports per-job cardinalities of 47-72
/// without enumerating them).
[[nodiscard]] std::shared_ptr<const space::ConfigSpace> cherrypick_space(
    const std::string& job_name, std::size_t cardinality);

[[nodiscard]] Dataset make_cherrypick_dataset(const SparkJobSpec& spec,
                                              std::size_t cardinality,
                                              std::uint64_t noise_seed = 0);

/// All 5 CherryPick datasets with cardinalities {72, 66, 60, 54, 47}.
[[nodiscard]] std::vector<Dataset> make_cherrypick_datasets(
    std::uint64_t noise_seed = 0);

}  // namespace lynceus::cloud

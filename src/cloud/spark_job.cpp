#include "cloud/spark_job.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "util/rng.hpp"

namespace lynceus::cloud {

SparkJob::SparkJob(SparkJobSpec spec, std::uint64_t noise_seed)
    : spec_(std::move(spec)), noise_seed_(noise_seed) {}

double SparkJob::runtime_seconds(const VmType& vm, std::size_t n) const {
  if (n == 0) {
    throw std::invalid_argument("SparkJob: need at least one instance");
  }
  const SparkJobSpec& s = spec_;
  const auto nn = static_cast<double>(n);
  const double cores = nn * static_cast<double>(vm.vcpus);

  // Spill penalty when the per-core working set exceeds per-core RAM.
  const double deficit =
      std::max(0.0, s.mem_per_core_gb - vm.ram_per_core()) / s.mem_per_core_gb;
  const double mem_penalty = 1.0 + 1.5 * deficit;

  const double compute = s.cpu_core_seconds * mem_penalty / (cores * vm.cpu_speed);
  const double shuffle_fraction = n > 1 ? (nn - 1.0) / nn : 0.0;
  const double shuffle = static_cast<double>(s.iterations) * s.shuffle_gb *
                         1024.0 / (nn * vm.net_mbps) * shuffle_fraction;
  const double scan = s.input_gb * 1024.0 / (nn * vm.disk_mbps);
  const double coordination =
      s.coord_seconds * static_cast<double>(s.iterations) * std::log2(nn + 1.0);

  double t = s.serial_seconds + coordination + compute + shuffle + scan;

  // Deterministic measurement noise, fixed per (job, vm, n).
  std::uint64_t h = noise_seed_ ^ std::hash<std::string>{}(s.name);
  h = util::derive_seed(h, std::hash<std::string>{}(vm.name));
  h = util::derive_seed(h, n);
  util::Rng rng(h);
  t *= std::exp(rng.normal(0.0, 0.05));
  return t;
}

double SparkJob::cluster_price_per_hour(const VmType& vm, std::size_t n) {
  return vm.price_per_hour * static_cast<double>(n);
}

namespace {

SparkJobSpec spec(const char* name, double cpu, double serial, double mem,
                  double shuffle, double input, unsigned iters,
                  double coord = 2.0) {
  SparkJobSpec s;
  s.name = name;
  s.cpu_core_seconds = cpu;
  s.serial_seconds = serial;
  s.mem_per_core_gb = mem;
  s.shuffle_gb = shuffle;
  s.input_gb = input;
  s.iterations = iters;
  s.coord_seconds = coord;
  return s;
}

}  // namespace

std::vector<SparkJobSpec> scout_job_specs() {
  // 18 jobs spanning CPU-, memory-, network- and disk-bound mixes
  // (HiBench Hadoop workloads + spark-perf ML workloads).
  return {
      spec("hadoop-wordcount", 12000, 20, 1.0, 8, 200, 1),
      spec("hadoop-sort", 6000, 15, 1.5, 180, 180, 1),
      spec("hadoop-terasort", 9000, 20, 1.5, 250, 250, 1),
      spec("hadoop-kmeans", 20000, 30, 3.0, 12, 60, 8),
      spec("hadoop-pagerank", 16000, 25, 4.5, 60, 40, 6),
      spec("hadoop-bayes", 14000, 25, 2.5, 35, 90, 2),
      spec("hadoop-nutchindexing", 10000, 30, 2.0, 25, 70, 1),
      spec("hadoop-join", 8000, 15, 3.0, 90, 120, 1),
      spec("hadoop-scan", 4000, 10, 1.0, 5, 300, 1),
      spec("hadoop-aggregation", 7000, 12, 2.0, 30, 150, 1),
      spec("spark-kmeans", 24000, 35, 5.0, 8, 50, 10),
      spec("spark-pagerank", 18000, 30, 6.5, 45, 30, 8),
      spec("spark-regression", 15000, 25, 4.0, 10, 80, 6),
      spec("spark-classification", 17000, 25, 3.5, 12, 60, 7),
      spec("spark-als", 26000, 40, 6.0, 30, 25, 10),
      spec("spark-pca", 12000, 20, 5.5, 20, 40, 4),
      spec("spark-gmm", 20000, 30, 4.5, 15, 45, 8),
      spec("spark-naivebayes", 9000, 15, 2.0, 18, 110, 2),
  };
}

std::vector<SparkJobSpec> cherrypick_job_specs() {
  // Bigger inputs, bigger clusters (the CherryPick grid uses 32-112
  // machines).
  return {
      spec("tpch", 30000, 45, 3.5, 120, 300, 3),
      spec("tpcds", 36000, 60, 4.0, 150, 400, 3),
      spec("terasort", 12000, 20, 1.5, 300, 300, 1),
      spec("spark-kmeans", 28000, 35, 5.5, 10, 60, 10),
      spec("spark-regression", 16000, 25, 4.0, 12, 90, 6),
  };
}

}  // namespace lynceus::cloud

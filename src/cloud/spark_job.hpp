#pragma once

/// \file spark_job.hpp
/// Synthetic performance model for the Hadoop/Spark jobs of the Scout and
/// CherryPick datasets (paper §5.1.2): distributed batch analytics on a
/// homogeneous cluster of `n` VMs.
///
/// The model is a classic Amdahl/bottleneck decomposition:
///
///   T(n, vm) = serial
///            + coordination · iterations · log2(n)
///            + cpu_work · mem_penalty / (n · vcpus · cpu_speed)
///            + iterations · shuffle / (n · net_bw) · (n-1)/n
///            + input / (n · disk_bw)
///
/// where `mem_penalty` models spilling when the per-core working set does
/// not fit in RAM. The per-job constants span CPU-, memory-, network- and
/// disk-bound mixes ("These jobs stress differently CPU, network and memory
/// resources" — §5.1.2), which is exactly what makes different VM families
/// optimal for different jobs and gives the optimizers a meaningful choice.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cloud/vm.hpp"

namespace lynceus::cloud {

struct SparkJobSpec {
  std::string name;
  double cpu_core_seconds = 1000.0;  ///< parallel CPU work at speed 1.0
  double serial_seconds = 10.0;      ///< non-parallelizable part
  double mem_per_core_gb = 2.0;      ///< working-set demand per core
  double shuffle_gb = 10.0;          ///< data shuffled per iteration
  double input_gb = 50.0;            ///< input scanned from storage
  unsigned iterations = 1;           ///< shuffle rounds (iterative jobs > 1)
  double coord_seconds = 2.0;        ///< per-round coordination coefficient
};

class SparkJob {
 public:
  explicit SparkJob(SparkJobSpec spec, std::uint64_t noise_seed = 0);

  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] const SparkJobSpec& spec() const noexcept { return spec_; }

  /// Wall-clock seconds on `n >= 1` instances of `vm`. Deterministic (the
  /// same fixed measurement-noise scheme as the TensorFlow model).
  [[nodiscard]] double runtime_seconds(const VmType& vm, std::size_t n) const;

  /// Cluster price in USD/hour: `n` instances (the Spark driver runs
  /// co-located on one of them, as in the original datasets).
  [[nodiscard]] static double cluster_price_per_hour(const VmType& vm,
                                                     std::size_t n);

 private:
  SparkJobSpec spec_;
  std::uint64_t noise_seed_;
};

/// The 18 jobs of the Scout dataset (HiBench + spark-perf suites).
[[nodiscard]] std::vector<SparkJobSpec> scout_job_specs();

/// The 5 jobs of the CherryPick dataset (TPC-H, TPC-DS, TeraSort,
/// SparkKmeans, SparkRegression).
[[nodiscard]] std::vector<SparkJobSpec> cherrypick_job_specs();

}  // namespace lynceus::cloud

#pragma once

/// \file catalog.hpp
/// EC2-like VM catalogs for the three evaluation settings of the paper:
///  * Table 2's t2 burstable family (TensorFlow jobs);
///  * the Scout dataset's C4/R4/M4 families, sizes large/xlarge/2xlarge;
///  * the CherryPick dataset's C4/M4/R3/I2 families.
///
/// Prices are us-east-1 on-demand rates (2018-era, matching the datasets'
/// collection period). The performance attributes (net/cpu/disk) are the
/// knobs of the synthetic workload models; see DESIGN.md §2 for why this
/// substitution preserves the paper's evaluation behaviour.

#include <optional>
#include <vector>

#include "cloud/vm.hpp"

namespace lynceus::cloud {

/// The four t2 types of the paper's Table 2.
[[nodiscard]] const std::vector<VmType>& t2_catalog();

/// C4, R4, M4 in sizes large/xlarge/2xlarge (Scout dataset).
[[nodiscard]] const std::vector<VmType>& scout_catalog();

/// C4, M4, R3, I2 in sizes large/xlarge/2xlarge (CherryPick dataset).
[[nodiscard]] const std::vector<VmType>& cherrypick_catalog();

/// Looks a type up by family and size.
[[nodiscard]] std::optional<VmType> find_vm(const std::vector<VmType>& catalog,
                                            VmFamily family, VmSize size);

/// Looks a type up by name (e.g. "c4.xlarge").
[[nodiscard]] std::optional<VmType> find_vm(const std::vector<VmType>& catalog,
                                            const std::string& name);

}  // namespace lynceus::cloud

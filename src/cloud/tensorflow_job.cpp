#include "cloud/tensorflow_job.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace lynceus::cloud {

std::string to_string(TfModel model) {
  switch (model) {
    case TfModel::Multilayer: return "multilayer";
    case TfModel::CNN: return "cnn";
    case TfModel::RNN: return "rnn";
  }
  throw std::invalid_argument("to_string(TfModel): unknown model");
}

TfJobParams tf_job_params(TfModel model) {
  TfJobParams p;
  switch (model) {
    case TfModel::Multilayer:
      // Small dense net: converges fast at lr=1e-3, cheap per sample.
      p.base_samples = 9e4;
      p.lr_factor_1e3 = 1.0;
      p.lr_factor_1e4 = 2.6;
      p.lr_factor_1e5 = 18.0;
      p.batch256_factor = 1.8;
      p.sync_batch_crit = 3000.0;
      p.async_stale_lin = 0.03;
      p.async_stale_quad = 1.0;
      p.rate_per_core = 650.0;
      p.batch_half = 10.0;
      p.model_mb = 2.0;
      break;
    case TfModel::CNN:
      // Convolutional net: compute heavy, few parameters, prefers lr=1e-4.
      p.base_samples = 1.8e5;
      p.lr_factor_1e3 = 1.3;
      p.lr_factor_1e4 = 1.0;
      p.lr_factor_1e5 = 12.0;
      p.batch256_factor = 2.0;
      p.sync_batch_crit = 12000.0;
      p.async_stale_lin = 0.12;
      p.async_stale_quad = 0.8;
      p.rate_per_core = 220.0;
      p.batch_half = 12.0;
      p.model_mb = 1.2;
      break;
    case TfModel::RNN:
      // Recurrent net: slowest per sample, largest parameter payload, very
      // sensitive to the learning rate and to asynchronous staleness.
      p.base_samples = 1.7e5;
      p.lr_factor_1e3 = 2.3;
      p.lr_factor_1e4 = 1.0;
      p.lr_factor_1e5 = 6.0;
      p.batch256_factor = 1.6;
      p.sync_batch_crit = 20000.0;
      p.async_stale_lin = 0.09;
      p.async_stale_quad = 1.5;
      p.rate_per_core = 260.0;
      p.batch_half = 16.0;
      p.model_mb = 2.5;
      break;
  }
  return p;
}

TensorflowJob::TensorflowJob(TfModel model, std::uint64_t noise_seed)
    : model_(model),
      name_(to_string(model)),
      params_(tf_job_params(model)),
      noise_seed_(noise_seed) {}

namespace {

double lr_factor(const TfJobParams& p, double lr) {
  if (lr == 1e-3) return p.lr_factor_1e3;
  if (lr == 1e-4) return p.lr_factor_1e4;
  if (lr == 1e-5) return p.lr_factor_1e5;
  throw std::invalid_argument(
      "TensorflowJob: learning rate must be one of {1e-3, 1e-4, 1e-5}");
}

}  // namespace

double TensorflowJob::raw_runtime_seconds(double learning_rate, unsigned batch,
                                          TrainingMode mode, const VmType& vm,
                                          std::size_t workers) const {
  if (batch != 16 && batch != 256) {
    throw std::invalid_argument("TensorflowJob: batch must be 16 or 256");
  }
  if (workers == 0) {
    throw std::invalid_argument("TensorflowJob: need at least one worker");
  }
  const TfJobParams& p = params_;
  const auto w = static_cast<double>(workers);
  const auto b = static_cast<double>(batch);

  // --- hardware efficiency -------------------------------------------------
  // Per-worker sample throughput: sub-linear in cores, amortized by batch.
  const double cores = static_cast<double>(vm.vcpus);
  const double worker_rate =
      p.rate_per_core * std::pow(cores, 0.8) * (b / (b + p.batch_half));
  const double raw_throughput = w * worker_rate;

  // Parameter-server NIC: every update moves the model twice (push + pull).
  const double updates_per_s = worker_rate / b;
  const double ps_traffic_mbps = w * updates_per_s * p.model_mb * 2.0;
  const double congestion = ps_traffic_mbps / vm.net_mbps;
  double throughput = raw_throughput / (1.0 + congestion);

  if (mode == TrainingMode::Sync) {
    // Barrier per step: stragglers hurt more on bigger clusters.
    throughput /= 1.0 + 0.03 * std::log(w);
  }

  // --- statistical efficiency ----------------------------------------------
  double samples = p.base_samples * lr_factor(p, learning_rate);
  if (batch == 256) samples *= p.batch256_factor;
  if (mode == TrainingMode::Sync) {
    // Effective batch = batch x workers; large effective batches need more
    // epochs to reach the target accuracy. Per the linear-scaling rule,
    // larger learning rates tolerate larger effective batches, which ties
    // the optimal learning rate to the cluster size (a joint interaction
    // the disjoint-optimization analysis of Fig. 1b hinges on).
    const double lr_ratio = learning_rate / 1e-3;
    const double eff_batch = b * w;
    const double crit = p.sync_batch_crit * std::sqrt(lr_ratio);
    samples *= std::pow(1.0 + eff_batch / crit, 0.6);
  } else {
    // Staleness grows with the number of concurrent writers and with the
    // step size. The damage of a stale gradient scales sub-linearly with
    // the step size (sqrt in the linear term), while outright divergence
    // (the quadratic term) needs both many writers and a large step —
    // so large async clusters favor small learning rates and very large
    // ones at lr = 1e-3 effectively diverge.
    const double lr_ratio = learning_rate / 1e-3;
    samples *= 1.0 +
               p.async_stale_lin * (w - 1.0) * std::sqrt(lr_ratio) +
               p.async_stale_quad * std::pow((w - 1.0) * lr_ratio / 32.0, 2.0);
  }

  double t = p.startup_s + samples / throughput;

  // Deterministic "measurement noise": the paper replays single
  // measurements, so each configuration gets one fixed noisy value.
  std::uint64_t h = noise_seed_ ^ (static_cast<std::uint64_t>(model_) << 56);
  h = util::derive_seed(h, static_cast<std::uint64_t>(learning_rate * 1e9));
  h = util::derive_seed(h, batch);
  h = util::derive_seed(h, mode == TrainingMode::Sync ? 1 : 2);
  h = util::derive_seed(h, vm.vcpus);
  h = util::derive_seed(h, workers);
  util::Rng rng(h);
  t *= std::exp(rng.normal(0.0, 0.04));

  return t;
}

double TensorflowJob::runtime_seconds(double learning_rate, unsigned batch,
                                      TrainingMode mode, const VmType& vm,
                                      std::size_t workers) const {
  const double t =
      raw_runtime_seconds(learning_rate, batch, mode, vm, workers);
  return std::min(t, kTimeoutSeconds);
}

bool TensorflowJob::times_out(double learning_rate, unsigned batch,
                              TrainingMode mode, const VmType& vm,
                              std::size_t workers) const {
  return raw_runtime_seconds(learning_rate, batch, mode, vm, workers) >
         kTimeoutSeconds;
}

double TensorflowJob::cluster_price_per_hour(const VmType& vm,
                                             std::size_t workers) {
  // Workers plus one parameter-server VM of the same type.
  return vm.price_per_hour * static_cast<double>(workers + 1);
}

}  // namespace lynceus::cloud

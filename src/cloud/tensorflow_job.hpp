#pragma once

/// \file tensorflow_job.hpp
/// Synthetic performance model of the paper's three TensorFlow jobs
/// (Multilayer, CNN, RNN — §5.1.1): distributed training with the
/// parameter-server architecture on a cluster of identical worker VMs plus
/// one parameter-server VM of the same type, run until the model reaches
/// accuracy 0.85 on MNIST, with a hard 10-minute timeout.
///
/// The paper evaluates optimizers against *previously measured* runtimes;
/// the measurements themselves are unavailable, so this module generates a
/// surface with the same published characteristics:
///
///  * cost spread of 2-3 orders of magnitude, with only ~1.5-5 % of the 384
///    configurations within 2x of the optimum (paper Fig. 1a);
///  * strong interactions between hyper-parameters and cluster choice, so
///    disjoint optimization is sub-optimal (paper Fig. 1b);
///  * roughly half the configurations violating the deadline (§5.2).
///
/// Mechanisms modeled (all standard parameter-server behaviour):
///  * statistical efficiency: samples-to-accuracy grows when the learning
///    rate is off its per-job sweet spot, when the per-worker batch is
///    large, when synchronous training inflates the *effective* batch
///    (batch x workers), and when asynchronous training suffers gradient
///    staleness (grows with workers x learning rate, diverging for large
///    clusters at lr = 1e-3);
///  * hardware efficiency: per-worker throughput scales sub-linearly with
///    VCPUs and is amortized by batch size; the parameter server's NIC is a
///    shared bottleneck (2 transfers of the model per update); synchronous
///    barriers add a straggler penalty growing with the worker count.

#include <cstddef>
#include <string>

#include "cloud/vm.hpp"

namespace lynceus::cloud {

enum class TfModel { Multilayer, CNN, RNN };

[[nodiscard]] std::string to_string(TfModel model);

enum class TrainingMode { Sync, Async };

/// Per-model constants of the synthetic surface.
struct TfJobParams {
  double base_samples = 1e5;      ///< samples to accuracy at the sweet spot
  double lr_factor_1e3 = 1.0;     ///< sample multiplier at lr = 1e-3
  double lr_factor_1e4 = 1.0;     ///<                    at lr = 1e-4
  double lr_factor_1e5 = 10.0;    ///<                    at lr = 1e-5
  double batch256_factor = 1.4;   ///< extra samples at per-worker batch 256
  double sync_batch_crit = 4000;  ///< effective-batch scale of sync penalty
  double async_stale_lin = 0.03;  ///< linear staleness coefficient
  double async_stale_quad = 1.0;  ///< quadratic (divergence) coefficient
  double rate_per_core = 300;     ///< samples/s per core, fully amortized
  double batch_half = 32;         ///< batch amortization half-point
  double model_mb = 2.0;          ///< parameter payload per update (MB)
  double startup_s = 8.0;         ///< graph build / cluster warm-up
};

[[nodiscard]] TfJobParams tf_job_params(TfModel model);

/// The simulated job. Deterministic: the same inputs always produce the
/// same runtime (a fixed multiplicative "measurement noise" term is derived
/// from a hash of the inputs, mimicking the single-measurement tables the
/// paper replays).
class TensorflowJob {
 public:
  static constexpr double kTimeoutSeconds = 600.0;  ///< paper: 10 minutes

  TensorflowJob(TfModel model, std::uint64_t noise_seed = 0);

  [[nodiscard]] TfModel model() const noexcept { return model_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Wall-clock seconds to reach accuracy 0.85, capped at the timeout.
  /// `workers >= 1`; `learning_rate` in {1e-3, 1e-4, 1e-5} (validated);
  /// `batch` in {16, 256} (validated).
  [[nodiscard]] double runtime_seconds(double learning_rate, unsigned batch,
                                       TrainingMode mode, const VmType& vm,
                                       std::size_t workers) const;

  /// True if the un-capped runtime exceeded the 10-minute timeout (the job
  /// was forcefully terminated before reaching the target accuracy).
  [[nodiscard]] bool times_out(double learning_rate, unsigned batch,
                               TrainingMode mode, const VmType& vm,
                               std::size_t workers) const;

  /// Cluster price: `workers` VMs plus one parameter-server VM of the same
  /// type (paper §5.1.1), in USD per hour.
  [[nodiscard]] static double cluster_price_per_hour(const VmType& vm,
                                                     std::size_t workers);

 private:
  [[nodiscard]] double raw_runtime_seconds(double learning_rate,
                                           unsigned batch, TrainingMode mode,
                                           const VmType& vm,
                                           std::size_t workers) const;

  TfModel model_;
  std::string name_;
  TfJobParams params_;
  std::uint64_t noise_seed_;
};

}  // namespace lynceus::cloud

#include "cloud/catalog.hpp"

namespace lynceus::cloud {

namespace {

VmType make(const char* name, VmFamily fam, VmSize size, unsigned vcpus,
            double ram, double price, double net, double speed, double disk) {
  VmType v;
  v.name = name;
  v.family = fam;
  v.size = size;
  v.vcpus = vcpus;
  v.ram_gb = ram;
  v.price_per_hour = price;
  v.net_mbps = net;
  v.cpu_speed = speed;
  v.disk_mbps = disk;
  return v;
}

}  // namespace

const std::vector<VmType>& t2_catalog() {
  // Burstable family: modest network, price roughly doubling per size.
  static const std::vector<VmType> catalog = {
      make("t2.small", VmFamily::T2, VmSize::Small, 1, 2.0, 0.023, 60.0, 1.0,
           80.0),
      make("t2.medium", VmFamily::T2, VmSize::Medium, 2, 4.0, 0.0464, 110.0,
           1.0, 80.0),
      make("t2.xlarge", VmFamily::T2, VmSize::XLarge, 4, 16.0, 0.1856, 170.0,
           1.0, 100.0),
      make("t2.2xlarge", VmFamily::T2, VmSize::XXLarge, 8, 32.0, 0.3712, 240.0,
           1.0, 100.0),
  };
  return catalog;
}

const std::vector<VmType>& scout_catalog() {
  // C4: compute-optimized (fast cores, little RAM); M4: general purpose;
  // R4: memory-optimized (slower clock, big RAM, enhanced networking).
  static const std::vector<VmType> catalog = {
      make("c4.large", VmFamily::C4, VmSize::Large, 2, 3.75, 0.100, 130.0,
           1.25, 100.0),
      make("c4.xlarge", VmFamily::C4, VmSize::XLarge, 4, 7.5, 0.199, 190.0,
           1.25, 110.0),
      make("c4.2xlarge", VmFamily::C4, VmSize::XXLarge, 8, 15.0, 0.398, 280.0,
           1.25, 120.0),
      make("m4.large", VmFamily::M4, VmSize::Large, 2, 8.0, 0.100, 110.0, 1.0,
           100.0),
      make("m4.xlarge", VmFamily::M4, VmSize::XLarge, 4, 16.0, 0.200, 160.0,
           1.0, 110.0),
      make("m4.2xlarge", VmFamily::M4, VmSize::XXLarge, 8, 32.0, 0.400, 250.0,
           1.0, 120.0),
      make("r4.large", VmFamily::R4, VmSize::Large, 2, 15.25, 0.133, 140.0,
           1.05, 100.0),
      make("r4.xlarge", VmFamily::R4, VmSize::XLarge, 4, 30.5, 0.266, 200.0,
           1.05, 110.0),
      make("r4.2xlarge", VmFamily::R4, VmSize::XXLarge, 8, 61.0, 0.532, 300.0,
           1.05, 120.0),
  };
  return catalog;
}

const std::vector<VmType>& cherrypick_catalog() {
  // R3 is the previous-generation memory family; I2 is storage-optimized
  // (large local SSDs, high disk bandwidth, expensive). "i2.large" never
  // existed on EC2; the CherryPick per-job masks in workloads.cpp remove
  // it, together with other unavailable cells, to reach the paper's
  // per-job cardinalities of 47-72 points.
  static const std::vector<VmType> catalog = {
      make("c4.large", VmFamily::C4, VmSize::Large, 2, 3.75, 0.100, 130.0,
           1.25, 100.0),
      make("c4.xlarge", VmFamily::C4, VmSize::XLarge, 4, 7.5, 0.199, 190.0,
           1.25, 110.0),
      make("c4.2xlarge", VmFamily::C4, VmSize::XXLarge, 8, 15.0, 0.398, 280.0,
           1.25, 120.0),
      make("m4.large", VmFamily::M4, VmSize::Large, 2, 8.0, 0.100, 110.0, 1.0,
           100.0),
      make("m4.xlarge", VmFamily::M4, VmSize::XLarge, 4, 16.0, 0.200, 160.0,
           1.0, 110.0),
      make("m4.2xlarge", VmFamily::M4, VmSize::XXLarge, 8, 32.0, 0.400, 250.0,
           1.0, 120.0),
      make("r3.large", VmFamily::R3, VmSize::Large, 2, 15.25, 0.166, 100.0,
           0.95, 150.0),
      make("r3.xlarge", VmFamily::R3, VmSize::XLarge, 4, 30.5, 0.333, 140.0,
           0.95, 180.0),
      make("r3.2xlarge", VmFamily::R3, VmSize::XXLarge, 8, 61.0, 0.665, 220.0,
           0.95, 220.0),
      make("i2.large", VmFamily::I2, VmSize::Large, 2, 15.25, 0.426, 100.0,
           0.9, 350.0),
      make("i2.xlarge", VmFamily::I2, VmSize::XLarge, 4, 30.5, 0.853, 140.0,
           0.9, 450.0),
      make("i2.2xlarge", VmFamily::I2, VmSize::XXLarge, 8, 61.0, 1.705, 220.0,
           0.9, 600.0),
  };
  return catalog;
}

std::optional<VmType> find_vm(const std::vector<VmType>& catalog,
                              VmFamily family, VmSize size) {
  for (const auto& vm : catalog) {
    if (vm.family == family && vm.size == size) return vm;
  }
  return std::nullopt;
}

std::optional<VmType> find_vm(const std::vector<VmType>& catalog,
                              const std::string& name) {
  for (const auto& vm : catalog) {
    if (vm.name == name) return vm;
  }
  return std::nullopt;
}

}  // namespace lynceus::cloud

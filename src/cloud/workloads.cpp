#include "cloud/workloads.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "cloud/catalog.hpp"
#include "util/rng.hpp"

namespace lynceus::cloud {

using space::ConfigSpace;
using space::LevelVector;
using space::ParamDomain;

namespace {

/// Total-VCPU levels of Table 2: every (type, worker-count) pair keeps the
/// cluster's VCPU total in this set.
const std::set<unsigned>& tf_vcpu_levels() {
  static const std::set<unsigned> levels = {8, 16, 32, 48, 64, 80, 96, 112};
  return levels;
}

std::vector<double> tf_worker_counts() {
  // Union of the per-type worker counts of Table 2.
  return {1,  2,  4,  6,  8,  10, 12, 14, 16, 20,
          24, 28, 32, 40, 48, 56, 64, 80, 96, 112};
}

}  // namespace

std::shared_ptr<const ConfigSpace> tensorflow_space() {
  std::vector<ParamDomain> dims;
  dims.push_back(space::numeric_param("learning_rate", {1e-3, 1e-4, 1e-5}));
  dims.push_back(space::numeric_param("batch", {16, 256}));
  dims.push_back(space::categorical_param("training_mode", {"sync", "async"}));
  {
    ParamDomain vm = space::categorical_param(
        "vm_type", {"t2.small", "t2.medium", "t2.xlarge", "t2.2xlarge"});
    dims.push_back(std::move(vm));
  }
  dims.push_back(space::numeric_param("workers", tf_worker_counts()));

  const auto& catalog = t2_catalog();
  const auto counts = tf_worker_counts();
  auto valid = [&catalog, counts](const LevelVector& lv) {
    const VmType& vm = catalog[lv[3]];
    const auto workers = static_cast<unsigned>(counts[lv[4]]);
    return tf_vcpu_levels().count(vm.vcpus * workers) > 0;
  };
  return std::make_shared<ConfigSpace>("tensorflow", std::move(dims), valid);
}

Dataset make_tensorflow_dataset(TfModel model, std::uint64_t noise_seed) {
  auto sp = tensorflow_space();
  const TensorflowJob job(model, noise_seed);
  const auto& catalog = t2_catalog();

  std::vector<Observation> obs(sp->size());
  for (std::size_t i = 0; i < sp->size(); ++i) {
    const auto id = static_cast<space::ConfigId>(i);
    const double lr = sp->value(id, 0);
    const auto batch = static_cast<unsigned>(sp->value(id, 1));
    const TrainingMode mode = sp->levels(id)[2] == 0 ? TrainingMode::Sync
                                                     : TrainingMode::Async;
    const VmType& vm = catalog[sp->levels(id)[3]];
    const auto workers = static_cast<std::size_t>(sp->value(id, 4));

    Observation o;
    o.runtime_seconds = job.runtime_seconds(lr, batch, mode, vm, workers);
    o.unit_price_per_hour = TensorflowJob::cluster_price_per_hour(vm, workers);
    o.timed_out = job.times_out(lr, batch, mode, vm, workers);
    obs[i] = o;
  }
  return Dataset("tensorflow-" + to_string(model), std::move(sp),
                 std::move(obs));
}

std::vector<Dataset> make_tensorflow_datasets(std::uint64_t noise_seed) {
  std::vector<Dataset> out;
  out.reserve(3);
  for (TfModel m : {TfModel::CNN, TfModel::RNN, TfModel::Multilayer}) {
    out.push_back(make_tensorflow_dataset(m, noise_seed));
  }
  return out;
}

namespace {

std::vector<double> scout_counts() {
  return {4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48};
}

}  // namespace

std::shared_ptr<const ConfigSpace> scout_space(bool exact_grid) {
  std::vector<ParamDomain> dims;
  dims.push_back(space::categorical_param("vm_family", {"c4", "m4", "r4"}));
  dims.push_back(
      space::categorical_param("vm_size", {"large", "xlarge", "2xlarge"}));
  dims.push_back(space::numeric_param("machines", scout_counts()));

  const auto counts = scout_counts();
  auto valid = [counts, exact_grid](const LevelVector& lv) {
    const double n = counts[lv[2]];
    if (lv[1] == 1 && n > 24) return false;  // xlarge caps at 24 (§5.1.2)
    if (lv[1] == 2) {                        // 2xlarge caps at 12 (§5.1.2)
      if (n > 12) return false;
      // 69-point variant: additionally cap 2xlarge at 10 machines to match
      // the paper's published cardinality (the literal grid yields 72).
      if (!exact_grid && n > 10) return false;
    }
    return true;
  };
  return std::make_shared<ConfigSpace>("scout", std::move(dims), valid);
}

namespace {

Dataset make_spark_dataset(const SparkJobSpec& spec,
                           std::shared_ptr<const ConfigSpace> sp,
                           const std::vector<VmType>& catalog,
                           const std::string& name_prefix,
                           std::uint64_t noise_seed) {
  const SparkJob job(spec, noise_seed);
  std::vector<Observation> obs(sp->size());
  for (std::size_t i = 0; i < sp->size(); ++i) {
    const auto id = static_cast<space::ConfigId>(i);
    const auto& lv = sp->levels(id);
    const std::string vm_name = sp->dim(0).label(lv[0]) + "." +
                                sp->dim(1).label(lv[1]);
    const auto vm = find_vm(catalog, vm_name);
    if (!vm) {
      throw std::logic_error("make_spark_dataset: unknown VM " + vm_name);
    }
    const auto n = static_cast<std::size_t>(sp->value(id, 2));
    Observation o;
    o.runtime_seconds = job.runtime_seconds(*vm, n);
    o.unit_price_per_hour = SparkJob::cluster_price_per_hour(*vm, n);
    obs[i] = o;
  }
  return Dataset(name_prefix + spec.name, std::move(sp), std::move(obs));
}

}  // namespace

Dataset make_scout_dataset(const SparkJobSpec& spec,
                           std::uint64_t noise_seed) {
  return make_spark_dataset(spec, scout_space(), scout_catalog(), "scout-",
                            noise_seed);
}

std::vector<Dataset> make_scout_datasets(std::uint64_t noise_seed) {
  std::vector<Dataset> out;
  for (const auto& spec : scout_job_specs()) {
    out.push_back(make_scout_dataset(spec, noise_seed));
  }
  return out;
}

namespace {

std::vector<double> cherrypick_counts() {
  return {32, 48, 64, 80, 96, 112};
}

}  // namespace

std::shared_ptr<const ConfigSpace> cherrypick_space(
    const std::string& job_name, std::size_t cardinality) {
  constexpr std::size_t kGrid = 4 * 3 * 6;  // 72
  if (cardinality == 0 || cardinality > kGrid) {
    throw std::invalid_argument(
        "cherrypick_space: cardinality must be in [1, 72]");
  }
  // Deterministic per-job mask: remove (72 - cardinality) random cells,
  // seeded by the job name. The paper reports only the per-job counts.
  std::vector<bool> keep(kGrid, true);
  const std::size_t to_remove = kGrid - cardinality;
  util::Rng rng(util::derive_seed(std::hash<std::string>{}(job_name), 7));
  std::size_t removed = 0;
  while (removed < to_remove) {
    const auto cell = static_cast<std::size_t>(rng.below(kGrid));
    if (keep[cell]) {
      keep[cell] = false;
      ++removed;
    }
  }

  std::vector<ParamDomain> dims;
  dims.push_back(
      space::categorical_param("vm_family", {"c4", "m4", "r3", "i2"}));
  dims.push_back(
      space::categorical_param("vm_size", {"large", "xlarge", "2xlarge"}));
  dims.push_back(space::numeric_param("machines", cherrypick_counts()));

  auto valid = [keep](const LevelVector& lv) {
    const std::size_t cell = (lv[0] * 3 + lv[1]) * 6 + lv[2];
    return keep[cell];
  };
  return std::make_shared<ConfigSpace>("cherrypick-" + job_name,
                                       std::move(dims), valid);
}

Dataset make_cherrypick_dataset(const SparkJobSpec& spec,
                                std::size_t cardinality,
                                std::uint64_t noise_seed) {
  return make_spark_dataset(spec, cherrypick_space(spec.name, cardinality),
                            cherrypick_catalog(), "cherrypick-", noise_seed);
}

std::vector<Dataset> make_cherrypick_datasets(std::uint64_t noise_seed) {
  const auto specs = cherrypick_job_specs();
  const std::size_t cards[] = {66, 72, 60, 54, 47};
  std::vector<Dataset> out;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    out.push_back(make_cherrypick_dataset(specs[i], cards[i], noise_seed));
  }
  return out;
}

}  // namespace lynceus::cloud

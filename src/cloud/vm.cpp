#include "cloud/vm.hpp"

#include <stdexcept>

namespace lynceus::cloud {

std::string to_string(VmFamily family) {
  switch (family) {
    case VmFamily::T2: return "t2";
    case VmFamily::C4: return "c4";
    case VmFamily::M4: return "m4";
    case VmFamily::R4: return "r4";
    case VmFamily::R3: return "r3";
    case VmFamily::I2: return "i2";
  }
  throw std::invalid_argument("to_string(VmFamily): unknown family");
}

std::string to_string(VmSize size) {
  switch (size) {
    case VmSize::Small: return "small";
    case VmSize::Medium: return "medium";
    case VmSize::Large: return "large";
    case VmSize::XLarge: return "xlarge";
    case VmSize::XXLarge: return "2xlarge";
  }
  throw std::invalid_argument("to_string(VmSize): unknown size");
}

}  // namespace lynceus::cloud

#include "cloud/dataset.hpp"

#include <fstream>
#include <limits>
#include <stdexcept>

#include "math/stats.hpp"
#include "util/strings.hpp"

namespace lynceus::cloud {

Dataset::Dataset(std::string job_name,
                 std::shared_ptr<const space::ConfigSpace> space,
                 std::vector<Observation> observations, double tmax_seconds)
    : name_(std::move(job_name)),
      space_(std::move(space)),
      obs_(std::move(observations)) {
  if (!space_) {
    throw std::invalid_argument("Dataset: null configuration space");
  }
  if (obs_.size() != space_->size()) {
    throw std::invalid_argument(
        "Dataset '" + name_ +
        "': need exactly one observation per configuration");
  }
  if (tmax_seconds > 0.0) {
    tmax_ = tmax_seconds;
  } else {
    // Median runtime: "we set the time constraint for each job in such a
    // way that it is satisfied by roughly half of the possible
    // configurations" (paper §5.2).
    std::vector<double> runtimes;
    runtimes.reserve(obs_.size());
    for (const auto& o : obs_) runtimes.push_back(o.runtime_seconds);
    tmax_ = math::percentile(std::move(runtimes), 50.0);
  }
  // A dataset where nothing is feasible would make CNO undefined.
  bool any = false;
  for (std::size_t id = 0; id < obs_.size(); ++id) {
    if (feasible(static_cast<space::ConfigId>(id))) {
      any = true;
      break;
    }
  }
  if (!any) {
    throw std::invalid_argument("Dataset '" + name_ +
                                "': no feasible configuration under Tmax");
  }
}

space::ConfigId Dataset::optimal() const {
  double best = std::numeric_limits<double>::infinity();
  space::ConfigId best_id = 0;
  bool found = false;
  for (std::size_t id = 0; id < obs_.size(); ++id) {
    const auto cid = static_cast<space::ConfigId>(id);
    if (!feasible(cid)) continue;
    const double c = cost(cid);
    if (c < best) {
      best = c;
      best_id = cid;
      found = true;
    }
  }
  if (!found) throw std::logic_error("Dataset::optimal: nothing feasible");
  return best_id;
}

double Dataset::optimal_cost() const { return cost(optimal()); }

double Dataset::mean_cost() const {
  math::RunningStats s;
  for (std::size_t id = 0; id < obs_.size(); ++id) {
    s.add(cost(static_cast<space::ConfigId>(id)));
  }
  return s.mean();
}

double Dataset::feasible_fraction() const {
  std::size_t count = 0;
  for (std::size_t id = 0; id < obs_.size(); ++id) {
    if (feasible(static_cast<space::ConfigId>(id))) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(obs_.size());
}

std::vector<double> Dataset::all_costs() const {
  std::vector<double> out;
  out.reserve(obs_.size());
  for (std::size_t id = 0; id < obs_.size(); ++id) {
    out.push_back(cost(static_cast<space::ConfigId>(id)));
  }
  return out;
}

void Dataset::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Dataset::save_csv: cannot open " + path);
  }
  // Header: dimension names, then the measurement columns.
  std::vector<std::string> header;
  for (const auto& d : space_->dims()) header.push_back(d.name);
  header.emplace_back("runtime_seconds");
  header.emplace_back("unit_price_per_hour");
  header.emplace_back("timed_out");
  out << util::join(header, ",") << "\n";
  out.precision(10);
  for (std::size_t id = 0; id < obs_.size(); ++id) {
    const auto cid = static_cast<space::ConfigId>(id);
    const auto& lv = space_->levels(cid);
    for (std::size_t d = 0; d < lv.size(); ++d) {
      out << lv[d] << ",";
    }
    const auto& o = obs_[id];
    out << o.runtime_seconds << "," << o.unit_price_per_hour << ","
        << (o.timed_out ? 1 : 0) << "\n";
  }
  out << "#tmax," << tmax_ << "\n";
}

Dataset Dataset::load_csv(const std::string& path, std::string job_name,
                          std::shared_ptr<const space::ConfigSpace> space) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("Dataset::load_csv: cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("Dataset::load_csv: empty file " + path);
  }
  const std::size_t dims = space->dim_count();
  std::vector<Observation> obs(space->size());
  std::vector<bool> seen(space->size(), false);
  double tmax = 0.0;
  while (std::getline(in, line)) {
    line = util::trim(line);
    if (line.empty()) continue;
    if (line.rfind("#tmax,", 0) == 0) {
      tmax = std::stod(line.substr(6));
      continue;
    }
    const auto fields = util::split(line, ',');
    if (fields.size() != dims + 3) {
      throw std::runtime_error("Dataset::load_csv: malformed row: " + line);
    }
    space::LevelVector lv(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      lv[d] = static_cast<std::size_t>(std::stoul(fields[d]));
    }
    const auto id = space->find(lv);
    if (!id) {
      throw std::runtime_error("Dataset::load_csv: row not in space: " + line);
    }
    Observation o;
    o.runtime_seconds = std::stod(fields[dims]);
    o.unit_price_per_hour = std::stod(fields[dims + 1]);
    o.timed_out = fields[dims + 2] == "1";
    obs[*id] = o;
    seen[*id] = true;
  }
  for (std::size_t id = 0; id < seen.size(); ++id) {
    if (!seen[id]) {
      throw std::runtime_error(
          "Dataset::load_csv: missing configuration row in " + path);
    }
  }
  return Dataset(std::move(job_name), std::move(space), std::move(obs), tmax);
}

}  // namespace lynceus::cloud

/// surface_stats — shape statistics of the synthetic TensorFlow surfaces
/// against the published characteristics (DESIGN.md §2): cost spread,
/// deadline-feasible fraction, timeout share, near-optimal scarcity, and
/// the ideal-disjoint-optimization CDF of Fig. 1b. Used to (re)calibrate
/// the workload models when their constants change.
#include <algorithm>
#include <cstdio>
#include "cloud/workloads.hpp"
#include "eval/disjoint.hpp"
#include "math/stats.hpp"
using namespace lynceus;
int main() {
  for (auto m : {cloud::TfModel::CNN, cloud::TfModel::RNN, cloud::TfModel::Multilayer}) {
    const auto ds = cloud::make_tensorflow_dataset(m);
    auto costs = ds.all_costs();
    std::sort(costs.begin(), costs.end());
    const double opt = ds.optimal_cost();
    std::size_t timeouts = 0, within2 = 0;
    for (space::ConfigId id = 0; id < ds.size(); ++id) {
      if (ds.observation(id).timed_out) ++timeouts;
      if (ds.feasible(id) && ds.cost(id) <= 2.0 * opt) ++within2;
    }
    const auto cnos = eval::disjoint_optimization_cno(ds, {0,1,2}, {3,4});
    double found = 0, worst = 0;
    for (double c : cnos) { if (c <= 1.0+1e-9) found += 1; worst = std::max(worst, c); }
    std::printf("%-12s opt=$%.4f spread=%.0fx tmax=%.0fs feas=%.2f timeout=%.2f within2x=%zu "
                "disjoint: find=%.2f p50=%.2f p90=%.2f max=%.2f\n",
                ds.job_name().c_str(), opt, costs.back()/opt, ds.tmax_seconds(),
                ds.feasible_fraction(), double(timeouts)/ds.size(), within2,
                found/cnos.size(), math::percentile(cnos,50), math::percentile(cnos,90), worst);
    // where is the optimum?
    std::printf("             optimum: %s  runtime=%.0fs\n", ds.space().describe(ds.optimal()).c_str(), ds.runtime(ds.optimal()));
  }
  return 0;
}

/// lynceus_tune — command-line tuner over the bundled workloads or a
/// user-supplied measurement CSV.
///
///   lynceus_tune --suite=tf --job=cnn                    # defaults
///   lynceus_tune --suite=scout --job=spark-kmeans --optimizer=bo
///   lynceus_tune --suite=tf --job=rnn --la=1 --b=5 --trace
///   lynceus_tune --suite=scout --job=hadoop-sort --dataset=mine.csv
///
/// Flags:
///   --suite     tf | scout | cherrypick          (default tf)
///   --job       job name within the suite        (default: first job)
///   --optimizer lynceus | bo | rnd | cherrypick  (default lynceus)
///   --la        Lynceus lookahead                (default 2)
///   --screen    Lynceus root-screening width     (default 24, 0 = all)
///   --b         budget multiplier                (default 3)
///   --seed      RNG seed                         (default 1)
///   --dataset   CSV produced by Dataset::save_csv / export_datasets,
///               replayed instead of the synthetic surface (its rows must
///               match the suite's configuration space)
///   --incremental  Lynceus incremental ensemble refit (faster lookahead
///               decisions, see core/lookahead.hpp; also enabled by
///               LYNCEUS_INCREMENTAL_REFIT=1)
///   --branch-parallel  also parallelize *inside* each root simulation
///               (trajectory-neutral; see the pooled-determinism contract
///               in core/lookahead.hpp; also enabled by
///               LYNCEUS_BRANCH_PARALLEL=1)
///   --trace     print the per-decision table
///   --list      list the suite's jobs and exit

#include <cstdio>
#include <optional>

#include "cloud/workloads.hpp"
#include "core/bo.hpp"
#include "core/lynceus.hpp"
#include "core/random_search.hpp"
#include "core/trace.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lynceus;

std::vector<cloud::Dataset> suite_datasets(const std::string& suite) {
  if (suite == "tf" || suite == "tensorflow") {
    return cloud::make_tensorflow_datasets();
  }
  if (suite == "scout") return cloud::make_scout_datasets();
  if (suite == "cherrypick") return cloud::make_cherrypick_datasets();
  throw std::invalid_argument("unknown suite '" + suite +
                              "' (expected tf | scout | cherrypick)");
}

const cloud::Dataset& pick_job(const std::vector<cloud::Dataset>& all,
                               const std::string& job) {
  if (job.empty()) return all.front();
  for (const auto& ds : all) {
    // Accept both the short name ("cnn") and the full one
    // ("tensorflow-cnn").
    if (ds.job_name() == job ||
        ds.job_name().find("-" + job) != std::string::npos) {
      return ds;
    }
  }
  throw std::invalid_argument("unknown job '" + job + "' (use --list)");
}

std::unique_ptr<core::Optimizer> make_optimizer(const std::string& name,
                                                unsigned la, unsigned screen,
                                                bool incremental,
                                                bool branch_parallel,
                                                core::OptimizerObserver* obs,
                                                util::ThreadPool* pool) {
  if (name == "lynceus") {
    core::LynceusOptions opts;
    opts.lookahead = la;
    opts.screen_width = screen;
    // env defaults (LYNCEUS_INCREMENTAL_REFIT / LYNCEUS_BRANCH_PARALLEL)
    // already applied; the CLI flags can only turn the features on, never
    // off.
    opts.incremental_refit = opts.incremental_refit || incremental;
    opts.branch_parallel = opts.branch_parallel || branch_parallel;
    opts.observer = obs;
    opts.pool = pool;
    return std::make_unique<core::LynceusOptimizer>(opts);
  }
  if (name == "bo") {
    core::BoOptions opts;
    opts.observer = obs;
    return std::make_unique<core::BayesianOptimizer>(opts);
  }
  if (name == "cherrypick") {
    auto spec = eval::cherrypick_spec();
    return spec.make();
  }
  if (name == "rnd") return std::make_unique<core::RandomSearch>();
  throw std::invalid_argument(
      "unknown optimizer '" + name +
      "' (expected lynceus | bo | rnd | cherrypick)");
}

int run(int argc, char** argv) {
  const util::CliFlags flags(argc, argv,
                             {"suite", "job", "optimizer", "la", "screen",
                              "b", "seed", "dataset", "incremental",
                              "branch-parallel", "trace", "list"});

  const auto all = suite_datasets(flags.get_string("suite", "tf"));
  if (flags.get_bool("list", false)) {
    for (const auto& ds : all) {
      std::printf("%-32s %4zu configs  Tmax %7.1f s\n", ds.job_name().c_str(),
                  ds.size(), ds.tmax_seconds());
    }
    return 0;
  }

  const cloud::Dataset* dataset = &pick_job(all, flags.get_string("job", ""));
  std::optional<cloud::Dataset> external;
  if (flags.has("dataset")) {
    external = cloud::Dataset::load_csv(flags.get_string("dataset", ""),
                                        dataset->job_name() + " (external)",
                                        dataset->space_ptr());
    dataset = &*external;
  }

  const double b = flags.get_double("b", 3.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto problem = eval::make_problem(*dataset, b);

  core::TraceRecorder trace;
  const bool want_trace = flags.get_bool("trace", false);
  // Per-decision root simulations fan out across the host's cores by
  // default; the explored trajectory does not depend on the pool size.
  util::ThreadPool pool(util::default_worker_count());
  auto optimizer = make_optimizer(
      flags.get_string("optimizer", "lynceus"),
      static_cast<unsigned>(flags.get_int("la", 2)),
      static_cast<unsigned>(flags.get_int("screen", 24)),
      flags.get_bool("incremental", false),
      flags.get_bool("branch-parallel", false),
      want_trace ? &trace : nullptr, &pool);

  std::printf("job %s | %zu configs | Tmax %.1f s | budget $%.4f | %s\n",
              dataset->job_name().c_str(), dataset->size(),
              problem.tmax_seconds, problem.budget,
              optimizer->name().c_str());

  eval::TableRunner runner(*dataset);
  const auto result = optimizer->optimize(problem, runner, seed);

  if (want_trace) {
    std::printf("\niter | viable | chosen config\n");
    for (std::size_t i = 0; i < trace.decisions().size(); ++i) {
      const auto& d = trace.decisions()[i];
      std::printf("%4zu | %6zu | %s  ($%.4f predicted, $%.4f actual)\n",
                  d.iteration, d.viable_count,
                  dataset->space().describe(d.chosen).c_str(),
                  d.predicted_cost, trace.runs()[i].cost);
    }
    if (!trace.stop_reason().empty()) {
      std::printf("stopped: %s\n", trace.stop_reason().c_str());
    }
  }

  std::printf("\nexplored %zu configurations, spent $%.4f of $%.4f\n",
              result.explorations(), result.budget_spent, problem.budget);
  if (!result.recommendation) {
    std::printf("no configuration could be recommended\n");
    return 1;
  }
  const auto best = *result.recommendation;
  std::printf("recommended: %s\n", dataset->space().describe(best).c_str());
  std::printf("  runtime %.1f s (%s), cost $%.4f per run, CNO %.3f\n",
              dataset->runtime(best),
              result.recommendation_feasible ? "meets deadline"
                                             : "MISSES deadline",
              dataset->cost(best), eval::cno(*dataset, result));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lynceus_tune: %s\n", e.what());
    return 2;
  }
}

/// lynceus_tune — command-line tuner over the bundled workloads or a
/// user-supplied measurement CSV.
///
///   lynceus_tune --suite=tf --job=cnn                    # defaults
///   lynceus_tune --suite=scout --job=spark-kmeans --optimizer=bo
///   lynceus_tune --suite=tf --job=rnn --la=1 --b=5 --trace
///   lynceus_tune --suite=tf --job=cnn --sessions=8       # service batch
///   lynceus_tune --job=cnn --snapshot=s.json --snapshot-after=14
///   lynceus_tune --job=cnn --resume=s.json               # and finish
///
/// Run `lynceus_tune --help` for the full flag reference (kept in one
/// place there, including the environment-variable defaults). Repeated or
/// conflicting flags are a hard error.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>

#include "cloud/workloads.hpp"
#include "core/bo.hpp"
#include "core/lynceus.hpp"
#include "core/random_search.hpp"
#include "core/stepper.hpp"
#include "core/trace.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "net/tuning_client.hpp"
#include "net/tuning_server.hpp"
#include "service/session_spec.hpp"
#include "service/tuning_service.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lynceus;

const char kUsage[] = R"(lynceus_tune — tune a bundled (or CSV-replayed) job

Flags:
  --suite     tf | scout | cherrypick          (default tf)
  --job       job name within the suite        (default: first job)
  --optimizer lynceus | bo | rnd | cherrypick  (default lynceus)
  --la        Lynceus lookahead                (default 2)
  --screen    Lynceus root-screening width     (default 24, 0 = all)
  --b         budget multiplier                (default 3)
  --seed      RNG seed                         (default 1)
  --dataset   CSV produced by Dataset::save_csv / export_datasets,
              replayed instead of the synthetic surface (its rows must
              match the suite's configuration space)
  --incremental      Lynceus incremental ensemble refit (faster lookahead
              decisions, see core/lookahead.hpp). Default: the
              LYNCEUS_INCREMENTAL_REFIT environment variable (unset =
              off); the flag can only turn the feature ON — with the env
              toggle set, omitting the flag does NOT turn it off.
  --branch-parallel  also parallelize *inside* each root simulation
              (trajectory-neutral; pooled-determinism contract in
              core/lookahead.hpp). Default: the LYNCEUS_BRANCH_PARALLEL
              environment variable (unset = off); same on-only semantics
              as --incremental.
  --sessions N       tune N concurrent sessions of the job (seeds
              seed..seed+N-1) through the TuningService over one shared
              thread pool, fed by simulated asynchronous run completions
              (lynceus | bo | rnd only; incompatible with --trace). A
              shared root cache only pays off for identical recurrent
              sessions — distinct seeds never share root states — so this
              mode runs without one.
  --throughput-workers N  with --sessions: drain the sessions through the
              worker-pool throughput scheduler (N workers pulling whole
              session steps off a shared run queue) instead of the
              single-threaded FIFO loop. Every session's trajectory is
              byte-identical either way — the scheduling contract in
              service/tuning_service.hpp — only wall-clock changes.
              Mutually exclusive with the shared decision pool, so this
              mode runs without one. Default 0 = FIFO loop.
  --snapshot PATH    serialize the session to PATH and exit once
              --snapshot-after tell()s have been applied
  --snapshot-after K runs applied before snapshotting (default: after
              the bootstrap)
  --resume PATH      restore the session saved at PATH and finish it
  --fault-rate P     deterministic fault injection: every profiling
              attempt crashes partway with probability P and straggles
              with probability P, drawn from a seeded stream keyed by
              (config, attempt) — same flags, same faults, byte-for-byte
              (the replay contract in eval/runner.hpp). Default 0 = off.
  --fault-seed S     seed of the fault stream (default 1)
  --straggler-factor F  duration multiplier for straggling runs
              (default 2, must be >= 1)
  --max-retries N    re-run a FAILED attempt up to N extra times before
              accepting the failure (default 0); each retry is a fresh
              attempt with fresh fault draws. With --sessions this is the
              TuningService retry policy; otherwise a synchronous re-run.
  --run-timeout T    kill any attempt after T seconds — the result
              becomes a censored timed-out observation at the cap
  --serve PORT       run a network tuning service on 127.0.0.1:PORT
              (PORT 0 = ephemeral, printed at startup) and block until
              stdin reaches EOF. Transport threads frame/decode, --shards
              independent service loops decide; sessions are
              hash-partitioned across them. --max-retries/--run-timeout
              set the server's default RunPolicy; the tuning flags are
              unused (clients send their own SessionSpec).
  --shards K         with --serve: number of service loops (default 2)
  --wire W           frame-body encoding, "json" or "binary". Default:
              negotiate — the client offers binary and the server picks
              it when allowed. With --serve, W restricts what the
              handshake may choose (binary-only servers reject clients
              that do not negotiate binary with a typed error). With
              --connect, "binary" demands binary (typed bad_negotiation
              error if refused) and "json" skips the handshake.
              Trajectories are byte-identical under either encoding.
  --pin-threads      with --serve: pin shard s to core s and transport t
              to core K+t (cache/lane locality; perf hint only)
  --connect HOST:PORT  tune over the network instead of in process: open
              --sessions sessions (default 1) built from the usual
              suite/job/optimizer flags, execute the profiling runs the
              server pushes against the local replay table, and tell the
              results back. Per-session trajectories are byte-identical
              to the in-process run (contract in src/net/
              tuning_server.hpp). Incompatible with --dataset, --trace,
              --snapshot/--resume and --throughput-workers.
  --trace     print the per-decision table
  --list      list the suite's jobs and exit
  --help      this text

Repeated or conflicting flags (e.g. --trace --no-trace) are an error.
)";

std::vector<cloud::Dataset> suite_datasets(const std::string& suite) {
  if (suite == "tf" || suite == "tensorflow") {
    return cloud::make_tensorflow_datasets();
  }
  if (suite == "scout") return cloud::make_scout_datasets();
  if (suite == "cherrypick") return cloud::make_cherrypick_datasets();
  throw std::invalid_argument("unknown suite '" + suite +
                              "' (expected tf | scout | cherrypick)");
}

const cloud::Dataset& pick_job(const std::vector<cloud::Dataset>& all,
                               const std::string& job) {
  if (job.empty()) return all.front();
  for (const auto& ds : all) {
    // Accept both the short name ("cnn") and the full one
    // ("tensorflow-cnn").
    if (ds.job_name() == job ||
        ds.job_name().find("-" + job) != std::string::npos) {
      return ds;
    }
  }
  throw std::invalid_argument("unknown job '" + job + "' (use --list)");
}

struct OptimizerChoice {
  std::string name;
  unsigned la = 2;
  unsigned screen = 24;
  bool incremental = false;
  bool branch_parallel = false;
};

/// The --fault-rate/--fault-seed/--straggler-factor/--max-retries/
/// --run-timeout knobs, resolved and validated.
struct FaultChoice {
  eval::FaultPlan plan;  ///< inactive when --fault-rate is 0 (the default)
  double run_timeout = std::numeric_limits<double>::infinity();
  std::size_t max_retries = 0;

  [[nodiscard]] bool active() const {
    return plan.active() || std::isfinite(run_timeout);
  }
};

FaultChoice parse_faults(const util::CliFlags& flags) {
  FaultChoice f;
  const double rate = flags.get_double("fault-rate", 0.0);
  f.plan.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));
  f.plan.fail_rate = rate;
  f.plan.straggler_rate = rate;
  f.plan.straggler_factor = flags.get_double("straggler-factor", 2.0);
  f.plan.validate();  // rates in [0,1], factor finite and >= 1
  f.run_timeout = flags.get_double(
      "run-timeout", std::numeric_limits<double>::infinity());
  if (std::isnan(f.run_timeout) || f.run_timeout <= 0.0) {
    throw std::invalid_argument("--run-timeout must be positive");
  }
  const std::int64_t retries = flags.get_int("max-retries", 0);
  if (retries < 0) {
    throw std::invalid_argument("--max-retries must be non-negative");
  }
  f.max_retries = static_cast<std::size_t>(retries);
  return f;
}

/// Synchronous-mode retry decorator: a FAILED result is re-run up to the
/// retry budget; every re-run is a fresh attempt of the inner
/// fault-injecting runner, so it gets fresh fault draws. (--sessions mode
/// retries through the TuningService RunPolicy instead.)
class RetryingRunner final : public core::JobRunner {
 public:
  RetryingRunner(core::JobRunner& inner, std::size_t max_attempts)
      : inner_(&inner), max_attempts_(max_attempts) {}

  [[nodiscard]] core::RunResult run(space::ConfigId id) override {
    core::RunResult r = inner_->run(id);
    for (std::size_t a = 1; a < max_attempts_ && r.failed(); ++a) {
      r = inner_->run(id);
    }
    return r;
  }

 private:
  core::JobRunner* inner_;
  std::size_t max_attempts_;
};

/// The synchronous runner stack: the replay table, optionally wrapped in
/// fault injection and retries. The fault-free stack is the bare table
/// runner — bitwise identical behavior to a build without fault support.
struct RunnerStack {
  eval::TableRunner table;
  std::unique_ptr<eval::FaultInjectingRunner> faulty;
  std::unique_ptr<RetryingRunner> retrying;
  core::JobRunner* active;

  RunnerStack(const cloud::Dataset& dataset, const FaultChoice& faults)
      : table(dataset), active(&table) {
    if (!faults.active()) return;
    faulty = std::make_unique<eval::FaultInjectingRunner>(
        table, faults.plan, faults.run_timeout);
    active = faulty.get();
    if (faults.max_retries > 0) {
      retrying = std::make_unique<RetryingRunner>(*faulty,
                                                  faults.max_retries + 1);
      active = retrying.get();
    }
  }
};

core::LynceusOptions lynceus_options(const OptimizerChoice& c,
                                     core::OptimizerObserver* obs,
                                     util::ThreadPool* pool) {
  core::LynceusOptions opts;
  opts.lookahead = c.la;
  opts.screen_width = c.screen;
  // env defaults (LYNCEUS_INCREMENTAL_REFIT / LYNCEUS_BRANCH_PARALLEL)
  // already applied; the CLI flags can only turn the features on, never
  // off.
  opts.incremental_refit = opts.incremental_refit || c.incremental;
  opts.branch_parallel = opts.branch_parallel || c.branch_parallel;
  opts.observer = obs;
  opts.pool = pool;
  return opts;
}

std::unique_ptr<core::Optimizer> make_optimizer(const OptimizerChoice& c,
                                                core::OptimizerObserver* obs,
                                                util::ThreadPool* pool) {
  if (c.name == "lynceus") {
    return std::make_unique<core::LynceusOptimizer>(
        lynceus_options(c, obs, pool));
  }
  if (c.name == "bo") {
    core::BoOptions opts;
    opts.observer = obs;
    return std::make_unique<core::BayesianOptimizer>(opts);
  }
  if (c.name == "cherrypick") {
    auto spec = eval::cherrypick_spec();
    return spec.make();
  }
  if (c.name == "rnd") return std::make_unique<core::RandomSearch>();
  throw std::invalid_argument(
      "unknown optimizer '" + c.name +
      "' (expected lynceus | bo | rnd | cherrypick)");
}

/// Ask/tell stepper for the session-based modes (--sessions, --snapshot,
/// --resume), via the generic Optimizer::make_stepper. CherryPick (a
/// composite spec without a stepper form) reports nullptr.
std::unique_ptr<core::OptimizerStepper> make_stepper(
    const OptimizerChoice& c, const core::OptimizationProblem& problem,
    std::uint64_t seed, core::OptimizerObserver* obs,
    util::ThreadPool* pool) {
  auto stepper = make_optimizer(c, obs, pool)->make_stepper(problem, seed);
  if (stepper == nullptr) {
    throw std::invalid_argument("optimizer '" + c.name +
                                "' has no ask/tell stepper "
                                "(expected lynceus | bo | rnd)");
  }
  return stepper;
}

/// The CLI flag set as one declarative SessionSpec — the same spec drives
/// the in-process service (--sessions) and the wire (--connect).
service::SessionSpec make_spec(const OptimizerChoice& c,
                               const FaultChoice& faults, std::uint64_t seed) {
  service::SessionSpec spec;
  if (c.name == "lynceus") {
    spec.optimizer = "lynceus";
    spec.lookahead = c.la;
    spec.screen_width = c.screen;
    // Same on-only semantics as the env toggles (see kUsage).
    spec.incremental_refit = spec.incremental_refit || c.incremental;
    spec.branch_parallel = spec.branch_parallel || c.branch_parallel;
  } else if (c.name == "bo") {
    spec.optimizer = "bo";
  } else if (c.name == "rnd") {
    spec.optimizer = "random";
  } else {
    throw std::invalid_argument("optimizer '" + c.name +
                                "' is not session-capable "
                                "(expected lynceus | bo | rnd)");
  }
  spec.seed = seed;
  if (faults.max_retries > 0 || std::isfinite(faults.run_timeout)) {
    service::RunPolicy policy;
    policy.max_attempts = faults.max_retries + 1;
    policy.run_timeout_seconds = faults.run_timeout;
    spec.run_policy = policy;
  }
  return spec;
}

void print_trace(const core::TraceRecorder& trace,
                 const cloud::Dataset& dataset) {
  std::printf("\niter | viable | chosen config\n");
  for (std::size_t i = 0; i < trace.decisions().size(); ++i) {
    const auto& d = trace.decisions()[i];
    std::printf("%4zu | %6zu | %s  ($%.4f predicted, $%.4f actual)\n",
                d.iteration, d.viable_count,
                dataset.space().describe(d.chosen).c_str(),
                d.predicted_cost, trace.runs()[i].cost);
  }
  if (!trace.stop_reason().empty()) {
    std::printf("stopped: %s\n", trace.stop_reason().c_str());
  }
}

void print_summary(const cloud::Dataset& dataset,
                   const core::OptimizationProblem& problem,
                   const core::OptimizerResult& result) {
  std::printf("\nexplored %zu configurations, spent $%.4f of $%.4f\n",
              result.explorations(), result.budget_spent, problem.budget);
  if (!result.failures.empty()) {
    std::printf("  %zu failed runs billed $%.4f of the spend\n",
                result.failures.size(), result.budget_spent_on_failures);
  }
  if (!result.recommendation) {
    std::printf("no configuration could be recommended\n");
    return;
  }
  const auto best = *result.recommendation;
  std::printf("recommended: %s\n", dataset.space().describe(best).c_str());
  std::printf("  runtime %.1f s (%s), cost $%.4f per run, CNO %.3f\n",
              dataset.runtime(best),
              result.recommendation_feasible ? "meets deadline"
                                             : "MISSES deadline",
              dataset.cost(best), eval::cno(dataset, result));
}

/// --sessions N: the TuningService batch mode. Every session tunes the
/// same job with its own seed; runs complete asynchronously in simulated
/// time, so sessions' tell()s interleave out of submission order exactly
/// as they would against a real cluster.
int run_sessions(const cloud::Dataset& dataset,
                 const core::OptimizationProblem& problem,
                 const OptimizerChoice& choice, const FaultChoice& faults,
                 std::uint64_t seed, std::size_t sessions,
                 std::size_t throughput_workers) {
  service::TuningService::Options sopts;
  if (throughput_workers > 0) {
    // Throughput mode owns the parallelism (whole session steps across
    // workers); the shared decision pool is mutually exclusive with it.
    sopts.throughput_workers = throughput_workers;
  } else {
    sopts.pool_workers = util::default_worker_count();
  }
  // No shared root cache: sessions carry distinct seeds, so their root
  // states (bootstrap rows + fit seeds) never coincide and exact-key hits
  // are impossible — the cache would only burn memory here. Identical
  // recurrent sessions (the scenario the shared cache serves) are
  // benchmarked in bench_micro's session_throughput section.
  service::TuningService svc(sopts);

  std::vector<service::SessionId> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    service::SessionSpec spec = make_spec(choice, faults, seed + i);
    spec.problem = &problem;
    ids.push_back(svc.open_session(spec));
  }

  eval::AsyncTableRunner async(dataset);
  if (faults.plan.active()) async.set_fault_plan(faults.plan);
  service::drain(svc, async);

  if (throughput_workers > 0) {
    std::printf("\n%zu sessions finished (throughput mode: %zu workers)\n",
                sessions, throughput_workers);
  } else {
    std::printf("\n%zu sessions finished (shared pool: %zu workers)\n",
                sessions, sopts.pool_workers);
  }
  for (std::size_t i = 0; i < sessions; ++i) {
    const auto result = svc.result(ids[i]);
    const long rec = result.recommendation
                         ? static_cast<long>(*result.recommendation)
                         : -1L;
    std::printf("  session %zu (seed %llu): %3zu runs (%zu failed), "
                "$%.4f spent, rec=%ld, CNO %.3f — %s\n",
                i, static_cast<unsigned long long>(seed + i),
                result.explorations(), result.failures.size(),
                result.budget_spent, rec, eval::cno(dataset, result),
                svc.stop_reason(ids[i]).c_str());
  }
  return 0;
}

/// --serve PORT: run the TCP front-end until stdin reaches EOF. The
/// tuning flags are unused — remote clients describe their sessions.
int run_serve(std::uint16_t port, std::size_t shards,
              net::TuningServer::WirePolicy wire, bool pin_threads,
              const FaultChoice& faults) {
  net::TuningServer::Options opts;
  opts.port = port;
  opts.shards = shards;
  opts.wire = wire;
  opts.pin_threads = pin_threads;
  opts.run_policy.max_attempts = faults.max_retries + 1;
  opts.run_policy.run_timeout_seconds = faults.run_timeout;
  net::TuningServer server(opts);
  const char* wire_desc =
      wire == net::TuningServer::WirePolicy::kJsonOnly     ? "json"
      : wire == net::TuningServer::WirePolicy::kBinaryOnly ? "binary"
                                                           : "negotiate";
  std::printf(
      "serving on 127.0.0.1:%u (%zu shards, wire %s) — EOF on stdin stops\n",
      static_cast<unsigned>(server.port()), shards, wire_desc);
  std::fflush(stdout);
  int c;
  while ((c = std::fgetc(stdin)) != EOF) {
  }
  server.stop();
  // Lane saturation report: a stall means a request parked its
  // connection because the shard lane was full — sustained stalls say
  // "more shards", a high-water near capacity says "bursty".
  for (const net::TuningServer::LaneStats& ls : server.request_lane_stats()) {
    if (ls.high_water == 0 && ls.stalls == 0) continue;
    std::printf("lane t%zu->s%zu: high water %zu/%zu, %zu stalls\n",
                ls.transport, ls.shard, ls.high_water, ls.capacity, ls.stalls);
  }
  return 0;
}

/// --connect HOST:PORT: the remote-driver loop. The server owns the
/// optimizer state; this side resolves the same job locally and replays
/// the runs the server pushes.
int run_connect(const std::string& target, const std::string& suite,
                const cloud::Dataset& dataset, double b,
                const OptimizerChoice& choice, const FaultChoice& faults,
                std::uint64_t seed, std::size_t sessions,
                net::TuningClient::WireMode wire) {
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == target.size()) {
    throw std::invalid_argument("--connect expects HOST:PORT");
  }
  const std::string host = target.substr(0, colon);
  const int port = std::stoi(target.substr(colon + 1));
  if (port <= 0 || port > 65535) {
    throw std::invalid_argument("--connect: port out of range");
  }

  std::optional<net::TuningClient> client;
  try {
    client.emplace(host, static_cast<std::uint16_t>(port),
                   net::kDefaultMaxFrameBytes, wire);
  } catch (const net::ProtocolError& e) {
    // The server refused the handshake (e.g. --wire binary against a
    // JSON-only server): a typed rejection, not a mystery disconnect.
    std::fprintf(stderr, "negotiation with %s failed [%s]: %s\n",
                 target.c_str(), e.code().c_str(), e.what());
    return 1;
  }
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    service::SessionSpec spec = make_spec(choice, faults, seed + i);
    spec.problem_ref =
        service::ProblemRef{suite, dataset.job_name(), b};
    ids.push_back(client->open(spec));
  }
  std::printf("opened %zu remote session(s) on %s (wire %s)\n", sessions,
              target.c_str(), net::wire_encoding_name(client->encoding()));

  eval::AsyncTableRunner async(dataset);
  if (faults.plan.active()) async.set_fault_plan(faults.plan);
  client->drain(async);

  int exit_code = 0;
  for (std::size_t i = 0; i < sessions; ++i) {
    const net::TuningClient::ResultReply reply = client->result(ids[i]);
    if (sessions == 1) {
      print_summary(dataset, eval::make_problem(dataset, b), reply.result);
      if (!reply.result.recommendation) exit_code = 1;
      continue;
    }
    const long rec = reply.result.recommendation
                         ? static_cast<long>(*reply.result.recommendation)
                         : -1L;
    std::printf("  session %zu (seed %llu): %3zu runs (%zu failed), "
                "$%.4f spent, rec=%ld, CNO %.3f — %s\n",
                i, static_cast<unsigned long long>(seed + i),
                reply.result.explorations(), reply.result.failures.size(),
                reply.result.budget_spent, rec,
                eval::cno(dataset, reply.result), reply.stop_reason.c_str());
    if (!reply.result.recommendation) exit_code = 1;
  }
  for (std::size_t i = 0; i < sessions; ++i) client->close_session(ids[i]);
  return exit_code;
}

int run(int argc, char** argv) {
  const util::CliFlags flags(
      argc, argv,
      {"suite", "job", "optimizer", "la", "screen", "b", "seed", "dataset",
       "incremental", "branch-parallel", "sessions", "throughput-workers",
       "snapshot", "snapshot-after", "resume", "fault-rate", "fault-seed",
       "straggler-factor", "max-retries", "run-timeout", "serve", "shards",
       "wire", "pin-threads", "connect", "trace", "list", "help"});

  if (flags.get_bool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  const std::string wire_flag = flags.get_string("wire", "");
  if (!wire_flag.empty() && wire_flag != "json" && wire_flag != "binary") {
    throw std::invalid_argument("--wire expects json or binary");
  }

  if (flags.has("serve")) {
    if (flags.has("connect")) {
      throw std::invalid_argument("--serve and --connect are exclusive");
    }
    const std::int64_t port = flags.get_int("serve", 0);
    if (port < 0 || port > 65535) {
      throw std::invalid_argument("--serve: port out of range");
    }
    const std::int64_t shards = flags.get_int("shards", 2);
    if (shards < 1) {
      throw std::invalid_argument("--shards must be >= 1");
    }
    const net::TuningServer::WirePolicy policy =
        wire_flag == "json"     ? net::TuningServer::WirePolicy::kJsonOnly
        : wire_flag == "binary" ? net::TuningServer::WirePolicy::kBinaryOnly
                                : net::TuningServer::WirePolicy::kNegotiate;
    return run_serve(static_cast<std::uint16_t>(port),
                     static_cast<std::size_t>(shards), policy,
                     flags.get_bool("pin-threads", false),
                     parse_faults(flags));
  }
  if (flags.has("shards")) {
    throw std::invalid_argument("--shards requires --serve");
  }
  if (flags.has("pin-threads")) {
    throw std::invalid_argument("--pin-threads requires --serve");
  }
  if (!wire_flag.empty() && !flags.has("connect")) {
    throw std::invalid_argument("--wire requires --serve or --connect");
  }

  const auto all = suite_datasets(flags.get_string("suite", "tf"));
  if (flags.get_bool("list", false)) {
    for (const auto& ds : all) {
      std::printf("%-32s %4zu configs  Tmax %7.1f s\n", ds.job_name().c_str(),
                  ds.size(), ds.tmax_seconds());
    }
    return 0;
  }

  const cloud::Dataset* dataset = &pick_job(all, flags.get_string("job", ""));
  std::optional<cloud::Dataset> external;
  if (flags.has("dataset")) {
    external = cloud::Dataset::load_csv(flags.get_string("dataset", ""),
                                        dataset->job_name() + " (external)",
                                        dataset->space_ptr());
    dataset = &*external;
  }

  const double b = flags.get_double("b", 3.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto problem = eval::make_problem(*dataset, b);

  OptimizerChoice choice;
  choice.name = flags.get_string("optimizer", "lynceus");
  choice.la = static_cast<unsigned>(flags.get_int("la", 2));
  choice.screen = static_cast<unsigned>(flags.get_int("screen", 24));
  choice.incremental = flags.get_bool("incremental", false);
  choice.branch_parallel = flags.get_bool("branch-parallel", false);

  const FaultChoice faults = parse_faults(flags);

  const auto sessions =
      static_cast<std::size_t>(flags.get_int("sessions", 1));
  const auto throughput_workers =
      static_cast<std::size_t>(flags.get_int("throughput-workers", 0));
  if (flags.has("connect")) {
    if (flags.has("dataset") || flags.get_bool("trace", false) ||
        flags.has("snapshot") || flags.has("resume") ||
        throughput_workers > 0) {
      throw std::invalid_argument(
          "--connect is incompatible with --dataset, --trace, --snapshot, "
          "--resume and --throughput-workers");
    }
    if (sessions < 1) {
      throw std::invalid_argument("--sessions must be >= 1");
    }
    const net::TuningClient::WireMode mode =
        wire_flag == "json"     ? net::TuningClient::WireMode::kJson
        : wire_flag == "binary" ? net::TuningClient::WireMode::kBinary
                                : net::TuningClient::WireMode::kNegotiate;
    return run_connect(flags.get_string("connect", ""),
                       flags.get_string("suite", "tf"), *dataset, b, choice,
                       faults, seed, sessions, mode);
  }
  if (throughput_workers > 0 && sessions <= 1) {
    throw std::invalid_argument(
        "--throughput-workers schedules concurrent sessions and requires "
        "--sessions N with N > 1");
  }
  if (sessions > 1) {
    if (flags.get_bool("trace", false)) {
      throw std::invalid_argument(
          "--trace prints one session's decision table and is not "
          "supported with --sessions");
    }
    std::printf("job %s | %zu configs | Tmax %.1f s | budget $%.4f | "
                "%zu sessions\n",
                dataset->job_name().c_str(), dataset->size(),
                problem.tmax_seconds, problem.budget, sessions);
    return run_sessions(*dataset, problem, choice, faults, seed, sessions,
                        throughput_workers);
  }

  core::TraceRecorder trace;
  const bool want_trace = flags.get_bool("trace", false);
  // Per-decision root simulations fan out across the host's cores by
  // default; the explored trajectory does not depend on the pool size.
  util::ThreadPool pool(util::default_worker_count());

  // --resume / --snapshot: session-based drive over an ask/tell stepper.
  if (flags.has("resume") || flags.has("snapshot")) {
    auto stepper = make_stepper(choice, problem, seed,
                                want_trace ? &trace : nullptr, &pool);
    if (flags.has("resume")) {
      const std::string path = flags.get_string("resume", "");
      std::ifstream in(path);
      std::stringstream buf;
      buf << in.rdbuf();
      if (!in) {
        std::fprintf(stderr, "lynceus_tune: cannot read %s\n", path.c_str());
        return 2;
      }
      stepper->restore(buf.str());
      std::printf("resumed %s from %s (%zu runs applied so far)\n",
                  stepper->name().c_str(), path.c_str(),
                  stepper->result().history.size());
    }
    const std::size_t snapshot_after = static_cast<std::size_t>(
        flags.get_int("snapshot-after",
                      static_cast<std::int64_t>(problem.bootstrap_samples)));
    RunnerStack stack(*dataset, faults);
    core::JobRunner& runner = *stack.active;
    std::size_t applied = stepper->result().history.size();
    const auto save_snapshot = [&]() -> bool {
      const std::string path = flags.get_string("snapshot", "");
      std::ofstream out(path);
      out << stepper->snapshot() << "\n";
      if (!out) {
        std::fprintf(stderr, "lynceus_tune: cannot write %s\n", path.c_str());
        return false;
      }
      std::printf("snapshot after %zu runs written to %s — resume with "
                  "--resume=%s\n",
                  applied, path.c_str(), path.c_str());
      return true;
    };
    while (!stepper->finished()) {
      // Snapshots may land mid-batch: told results ride inside the
      // snapshot, untold ones are re-asked for after a restore.
      if (flags.has("snapshot") && applied >= snapshot_after) {
        return save_snapshot() ? 0 : 2;
      }
      const core::StepAction& action = stepper->ask();
      if (action.kind == core::StepAction::Kind::Finished) break;
      for (core::ConfigId id : stepper->outstanding_configs()) {
        if (flags.has("snapshot") && applied >= snapshot_after) {
          return save_snapshot() ? 0 : 2;
        }
        stepper->tell(id, runner.run(id));
        ++applied;
      }
    }
    if (want_trace) print_trace(trace, *dataset);
    print_summary(*dataset, problem, stepper->result());
    return stepper->result().recommendation ? 0 : 1;
  }

  auto optimizer =
      make_optimizer(choice, want_trace ? &trace : nullptr, &pool);

  std::printf("job %s | %zu configs | Tmax %.1f s | budget $%.4f | %s\n",
              dataset->job_name().c_str(), dataset->size(),
              problem.tmax_seconds, problem.budget,
              optimizer->name().c_str());

  RunnerStack stack(*dataset, faults);
  const auto result = optimizer->optimize(problem, *stack.active, seed);

  if (want_trace) print_trace(trace, *dataset);

  print_summary(*dataset, problem, result);
  return result.recommendation ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lynceus_tune: %s\n", e.what());
    return 2;
  }
}

#!/usr/bin/env python3
"""Perf-regression gate over bench_micro's BENCH_micro.json summaries.

Compares the p50 decision times of a freshly measured summary against the
committed baseline and fails (exit 1) on a regression. Because the baseline
may have been recorded on a different machine than the run under test (a
shared CI runner vs the dev box), absolute ratios are meaningless; the gate
therefore normalizes by the *median* new/baseline ratio across all compared
entries — a uniform machine-speed factor cancels out, and only entries that
regressed relative to the rest of the suite trip the gate.

Rules:
  * an entry fails when its ratio exceeds median_ratio * (1 + threshold)
    (default threshold 15%);
  * entries whose baseline p50 sits below the noise floor (default 1 ms)
    only warn — sub-millisecond timings on shared runners are dominated by
    scheduling noise;
  * sections present in only one file are skipped with a note, so the gate
    survives schema growth;
  * --mode=warn (or BENCH_GATE_MODE=warn) reports without failing.

A before/after table is printed to stdout and, when the GITHUB_STEP_SUMMARY
environment variable is set, appended there as Markdown.

Usage: compare_bench.py --baseline=BENCH_micro.json --new=bench_new.json
                        [--threshold=0.15] [--noise-floor-ms=1.0]
                        [--mode=gate|warn]
"""

import argparse
import json
import os
import statistics
import sys


def load_entries(summary):
    """Flattens a summary into ({key: p50_ms}, [notes]) over every gated
    section. Entries that are structurally meaningless — a pooled decision
    recorded with a 0-worker pool (1-core host, or unknown hardware
    concurrency), which measures pool overhead rather than scaling — are
    skipped outright with a note, not warned about."""
    entries = {}
    notes = []
    for space in summary.get("spaces", []):
        for e in space.get("lookahead", []):
            key = f"{space['space']}/la{e['la']}"
            entries[key] = e["p50_ms"]
    for e in summary.get("multi_constraint", []):
        key = f"mc/{e['space']}/la{e['la']}"
        entries[key] = e["engine_p50_ms"]
    for e in summary.get("incremental_refit", []):
        # Multi-constraint incremental cases carry a "constraints" key; the
        # single-constraint cases predate it and stay on the short key so
        # old baselines keep comparing.
        if "constraints" in e:
            key = f"inc/mc/{e['space']}/c{e['constraints']}/la{e['la']}"
        else:
            key = f"inc/{e['space']}/la{e['la']}"
        entries[key] = e["p50_ms"]
    for e in summary.get("soa_predict", []):
        # Flat-layout (SoA) batch prediction: both the batch route's own
        # p50 and the scalar node-walk reference are gated (a regression
        # in either layout matters), plus the LA=2 decision the batch
        # routes feed.
        entries[f"soa/{e['space']}/batch"] = e["soa_p50_ms"]
        entries[f"soa/{e['space']}/node_walk"] = e["node_walk_p50_ms"]
        # Synthetic-grid entries have no decision dataset, hence no LA=2
        # decision measurement — the key is optional per entry.
        if "decision_la2_p50_ms" in e:
            entries[f"soa/{e['space']}/decision_la2"] = e["decision_la2_p50_ms"]
    for e in summary.get("pooled_decision", []):
        # The worker count is part of the key: a 7-worker baseline p50 and
        # a 3-worker run are different configurations, not a regression —
        # mismatched counts fall into the "only in one file" skip.
        key = f"pooled/{e['space']}/la{e['la']}/w{e.get('workers', 0)}"
        if e.get("workers", 0) == 0:
            notes.append(f"{key} skipped (workers == 0: inline pool, "
                         "no scaling to gate)")
            continue
        entries[key] = e["p50_ms"]
    for e in summary.get("session_throughput", []):
        # TuningService decision throughput: gated on the per-decision
        # latency of the whole multi-session drain (session count and
        # cache sharing mode are part of the key).
        key = (f"svc/{e['space']}/s{e['sessions']}"
               f"/{e.get('cache', 'shared')}")
        entries[key] = e["ms_per_decision"]
    for e in summary.get("decision_scaling", []):
        # Same rules as pooled_decision: the worker count is part of the
        # key (so a 1-core baseline and a multi-core CI run only compare
        # the worker counts both actually measured), and workers == 0 is
        # the inline serial reference — nothing to gate.
        key = (f"scaling/{e['space']}/la{e['la']}/{e.get('mode', 'roots')}"
               f"/w{e.get('workers', 0)}")
        if e.get("workers", 0) == 0:
            notes.append(f"{key} skipped (workers == 0: inline pool, "
                         "no scaling to gate)")
            continue
        entries[key] = e["p50_ms"]
    for e in summary.get("net_throughput", []):
        # Network front-end (loopback TCP) throughput: gated on the
        # per-decision latency of the distributed drain AND the p99 tell
        # round-trip latency (the remote driver's hot path). Session,
        # client and shard counts are all part of the key, and so is the
        # wire encoding — a json baseline and a binary run are different
        # protocols, not a regression. Pre-negotiation summaries carry
        # no "wire" field; those default to json (the only encoding that
        # existed), so old baselines line up with new json entries.
        key = (f"net/{e['space']}/{e.get('wire', 'json')}"
               f"/s{e['sessions']}/c{e['clients']}/sh{e['shards']}")
        entries[f"{key}/decision"] = e["ms_per_decision"]
        entries[f"{key}/tell_p99"] = e["tell_p99_ms"]
    for e in summary.get("session_scaling", []):
        # Inter-session throughput scaling (FIFO loop vs the throughput
        # worker pool): the worker count is part of the key, and
        # workers == 0 is the single-threaded FIFO reference — skipped
        # here like the other serial references (scaling_gate.py gates
        # the speedup curve itself).
        key = f"sscale/{e['space']}/s{e['sessions']}/w{e.get('workers', 0)}"
        if e.get("workers", 0) == 0:
            notes.append(f"{key} skipped (workers == 0: FIFO loop, "
                         "no scaling to gate)")
            continue
        entries[key] = e["ms_per_decision"]
    return entries, notes


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--new", dest="new_path", required=True)
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--noise-floor-ms", type=float, default=1.0)
    ap.add_argument("--mode", choices=["gate", "warn"],
                    default=os.environ.get("BENCH_GATE_MODE", "gate"))
    args = ap.parse_args()

    with open(args.baseline) as f:
        base, base_notes = load_entries(json.load(f))
    with open(args.new_path) as f:
        new, new_notes = load_entries(json.load(f))

    common = sorted(set(base) & set(new))
    skipped = sorted(set(base) ^ set(new))
    if not common:
        print("compare_bench: no comparable entries; nothing to gate")
        return 0

    ratios = {k: new[k] / base[k] for k in common if base[k] > 0}
    median_ratio = statistics.median(ratios.values())

    rows = []
    failures = []
    warnings = []
    for k in common:
        ratio = ratios.get(k)
        if ratio is None:
            continue
        rel = ratio / median_ratio - 1.0
        noisy = base[k] < args.noise_floor_ms
        status = "ok"
        if rel > args.threshold:
            if noisy:
                status = "WARN (noise floor)"
                warnings.append(k)
            else:
                status = "FAIL"
                failures.append(k)
        rows.append((k, base[k], new[k], ratio, rel, status))

    lines = [
        f"Perf gate: median machine-speed ratio {median_ratio:.3f}, "
        f"threshold +{args.threshold:.0%} over median, "
        f"noise floor {args.noise_floor_ms} ms",
        "",
        "| benchmark | baseline p50 (ms) | new p50 (ms) | ratio | vs median | status |",
        "|---|---|---|---|---|---|",
    ]
    for k, b, n, ratio, rel, status in rows:
        lines.append(
            f"| {k} | {b:.3f} | {n:.3f} | {ratio:.3f} | {rel:+.1%} | {status} |")
    for k in skipped:
        lines.append(f"| {k} | — | — | — | — | skipped (only in one file) |")
    for note in sorted(set(base_notes + new_notes)):
        lines.append(f"| {note.split(' ', 1)[0]} | — | — | — | — | "
                     f"{note.split(' ', 1)[1]} |")
    report = "\n".join(lines)
    print(report)

    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a") as f:
            f.write("## bench_micro perf gate\n\n" + report + "\n")

    if failures:
        print(f"\ncompare_bench: {len(failures)} regression(s): "
              + ", ".join(failures))
        if args.mode == "warn":
            print("compare_bench: warn mode — not failing the build")
            return 0
        return 1
    if warnings:
        print(f"\ncompare_bench: {len(warnings)} sub-noise-floor warning(s): "
              + ", ".join(warnings))
    print("compare_bench: no regressions above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Scaling recorder + gate over bench_micro's decision_scaling,
session_scaling and net_throughput sections (the CI `scaling` job's
checks).

Renders the measured curves as Markdown tables (stdout and, when
GITHUB_STEP_SUMMARY is set, the job summary) and enforces two bars:

  * decision_scaling: TF-CNN LA=2 branch-parallel decisions (mode
    `roots+branch`) at the runner's maximum measured worker count must
    reach `--min-speedup` (default 1.5x) p50 speedup over the same mode
    at workers=1.
  * session_scaling: decisions/s across `--sessions` (default 64)
    concurrent sessions in throughput mode at the maximum measured worker
    count must reach `--session-min-speedup` (default 3x) over the
    single-threaded FIFO loop (workers=0).

A net_throughput section (the loopback TCP front-end, src/net/) is
rendered alongside the other tables when present — recorded for the
curve, gated by compare_bench.py in the build matrix rather than here.
When the same shape (space/sessions/clients/shards) was measured under
both wire encodings, a json-vs-binary "wire tax" table is added so the
frame-format savings read directly off the job summary.

Runners whose maximum is below 2 workers cannot measure scaling and pass
with a skip note — the 1-core dev box records w in {0, 1} only. A missing
session_scaling section is a skip note by default (old baselines) but a
hard failure with --require-sessions, which the CI scaling job passes so
a silently dropped bench section cannot disable the gate.

Usage: scaling_gate.py BENCH_JSON [--min-speedup=1.5]
                       [--space=tensorflow_cnn] [--la=2]
                       [--mode=roots+branch]
                       [--session-min-speedup=3.0] [--sessions=64]
                       [--require-sessions]
"""

import argparse
import json
import os
import sys


def render_table(entries):
    lines = [
        "## decision_scaling (multi-core CI runner)",
        "",
        "| space | la | mode | workers | p50 (ms) | speedup vs w1 |",
        "|---|---|---|---|---|---|",
    ]
    for e in entries:
        speedup = e.get("speedup_vs_w1", 0.0)
        lines.append(
            f"| {e['space']} | {e['la']} | {e['mode']} | {e['workers']} | "
            f"{e['p50_ms']:.3f} | "
            + (f"{speedup:.2f}x |" if speedup else "— |"))
    return "\n".join(lines)


def render_session_table(entries):
    lines = [
        "## session_scaling (multi-core CI runner)",
        "",
        "| space | sessions | workers | decisions | decisions/s | "
        "speedup vs w0 |",
        "|---|---|---|---|---|---|",
    ]
    for e in entries:
        speedup = e.get("speedup_vs_w0", 0.0)
        lines.append(
            f"| {e['space']} | {e['sessions']} | {e['workers']} | "
            f"{e.get('decisions', 0)} | {e['decisions_per_sec']:.0f} | "
            + (f"{speedup:.2f}x |" if speedup else "— |"))
    return "\n".join(lines)


def render_net_table(entries):
    lines = [
        "## net_throughput (loopback TCP front-end)",
        "",
        "| space | wire | sessions | clients | shards | decisions | "
        "decisions/s | tell p50 (ms) | tell p99 (ms) |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for e in entries:
        lines.append(
            f"| {e['space']} | {e.get('wire', 'json')} | {e['sessions']} | "
            f"{e['clients']} | {e['shards']} | {e.get('decisions', 0)} | "
            f"{e['decisions_per_sec']:.0f} | {e['tell_p50_ms']:.3f} | "
            f"{e['tell_p99_ms']:.3f} |")
    return "\n".join(lines)


def render_wire_table(entries):
    """Pairs json/binary runs of the same shape: the wire-tax view.

    Returns None when no shape was measured under both encodings (e.g.
    pre-negotiation baselines, which carry no "wire" field at all)."""
    by_shape = {}
    for e in entries:
        shape = (e["space"], e["sessions"], e["clients"], e["shards"])
        by_shape.setdefault(shape, {})[e.get("wire", "json")] = e
    rows = []
    for shape in sorted(by_shape):
        pair = by_shape[shape]
        if "json" not in pair or "binary" not in pair:
            continue
        j, b = pair["json"], pair["binary"]
        space, sessions, clients, shards = shape
        gain = (b["decisions_per_sec"] / j["decisions_per_sec"] - 1.0) * 100.0
        rows.append(
            f"| {space} | {sessions} | {clients} | {shards} | "
            f"{j['decisions_per_sec']:.0f} | {b['decisions_per_sec']:.0f} | "
            f"{gain:+.1f}% | {j['tell_p99_ms']:.2f} | "
            f"{b['tell_p99_ms']:.2f} |")
    if not rows:
        return None
    return "\n".join([
        "## wire tax (json vs binary, same shape)",
        "",
        "| space | sessions | clients | shards | json dec/s | binary dec/s | "
        "binary gain | json tell p99 (ms) | binary tell p99 (ms) |",
        "|---|---|---|---|---|---|---|---|---|",
    ] + rows)


def gate(entries, space, la, mode, min_speedup, out=print):
    """Returns 0 (pass/skip) or 1 (scaling below the bar / no data)."""
    curve = [e for e in entries
             if e["space"] == space and e["la"] == la and e["mode"] == mode]
    if not curve:
        out(f"scaling_gate: no entries for {space}/la{la}/{mode}")
        return 1
    max_w = max(e["workers"] for e in curve)
    if max_w < 2:
        out(f"scaling_gate: runner has max {max_w} pool workers; "
            "gate skipped (scaling needs >= 2)")
        return 0
    top = next(e for e in curve if e["workers"] == max_w)
    if "speedup_vs_w1" not in top:
        # Distinguish a malformed section from a genuine sub-bar speedup:
        # .get(..., 0.0) used to conflate them, reporting "0.00x vs w1"
        # for a bench that never computed the ratio at all.
        out(f"scaling_gate: MALFORMED — entry for {space} la{la} {mode} "
            f"w{max_w} has no speedup_vs_w1 key (bench output truncated "
            "or from an incompatible bench_micro?)")
        return 1
    speedup = top["speedup_vs_w1"]
    out(f"scaling_gate: {space} la{la} {mode} w{max_w}: "
        f"{speedup:.2f}x vs w1 (bar {min_speedup:.2f}x)")
    if speedup < min_speedup:
        out(f"scaling_gate: FAIL — branch-parallel scaling below the bar")
        return 1
    out("scaling_gate: passed")
    return 0


def gate_sessions(entries, sessions, min_speedup, out=print):
    """Gates throughput-mode decisions/s at `sessions` concurrent sessions
    vs the single-threaded FIFO loop. Returns 0 (pass/skip) or 1."""
    curve = [e for e in entries if e["sessions"] == sessions]
    if not curve:
        out(f"scaling_gate: no session_scaling entries for "
            f"sessions={sessions}")
        return 1
    max_w = max(e["workers"] for e in curve)
    if max_w < 2:
        out(f"scaling_gate: runner has max {max_w} session workers; "
            "session gate skipped (scaling needs >= 2)")
        return 0
    top = next(e for e in curve if e["workers"] == max_w)
    if "speedup_vs_w0" not in top:
        out(f"scaling_gate: MALFORMED — session_scaling entry for "
            f"sessions={sessions} w{max_w} has no speedup_vs_w0 key "
            "(bench output truncated or from an incompatible bench_micro?)")
        return 1
    speedup = top["speedup_vs_w0"]
    out(f"scaling_gate: {sessions} sessions w{max_w}: "
        f"{top['decisions_per_sec']:.0f} decisions/s, "
        f"{speedup:.2f}x vs the FIFO loop (bar {min_speedup:.2f}x)")
    if speedup < min_speedup:
        out("scaling_gate: FAIL — session throughput below the bar")
        return 1
    out("scaling_gate: session gate passed")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("--min-speedup", type=float, default=1.5)
    ap.add_argument("--space", default="tensorflow_cnn")
    ap.add_argument("--la", type=int, default=2)
    ap.add_argument("--mode", default="roots+branch")
    ap.add_argument("--session-min-speedup", type=float, default=3.0)
    ap.add_argument("--sessions", type=int, default=64)
    ap.add_argument("--require-sessions", action="store_true",
                    help="fail when the session_scaling section is missing "
                         "(the CI scaling job sets this)")
    args = ap.parse_args()

    with open(args.bench_json) as f:
        summary = json.load(f)
    entries = summary.get("decision_scaling", [])
    if not entries:
        print(f"scaling_gate: {args.bench_json} has no decision_scaling "
              "section")
        return 1

    report = render_table(entries)
    session_entries = summary.get("session_scaling", [])
    if session_entries:
        report += "\n\n" + render_session_table(session_entries)
    # The TCP front-end curve rides along for the record (rendered next to
    # session_scaling so in-process vs over-the-wire throughput read side
    # by side); its regression gate lives in compare_bench.py, not here.
    net_entries = summary.get("net_throughput", [])
    if net_entries:
        report += "\n\n" + render_net_table(net_entries)
        wire_table = render_wire_table(net_entries)
        if wire_table:
            report += "\n\n" + wire_table
    print(report)
    step = os.environ.get("GITHUB_STEP_SUMMARY")
    if step:
        with open(step, "a") as f:
            f.write(report + "\n")

    rc = gate(entries, args.space, args.la, args.mode, args.min_speedup)
    if session_entries:
        rc |= gate_sessions(session_entries, args.sessions,
                            args.session_min_speedup)
    elif args.require_sessions:
        print(f"scaling_gate: {args.bench_json} has no session_scaling "
              "section (required)")
        rc = 1
    else:
        print("scaling_gate: no session_scaling section; session gate "
              "skipped")
    return rc


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Decision-scaling recorder + gate over bench_micro's decision_scaling
section (the CI `scaling` job's check).

Renders the measured curve as a Markdown table (stdout and, when
GITHUB_STEP_SUMMARY is set, the job summary) and enforces the scaling bar:
TF-CNN LA=2 branch-parallel decisions (mode `roots+branch`) at the
runner's maximum measured worker count must reach `--min-speedup`
(default 1.5x) p50 speedup over the same mode at workers=1. Runners whose
maximum is below 2 workers cannot measure scaling and pass with a skip
note — the 1-core dev box records w in {0, 1} only.

Usage: scaling_gate.py BENCH_JSON [--min-speedup=1.5]
                       [--space=tensorflow_cnn] [--la=2]
                       [--mode=roots+branch]
"""

import argparse
import json
import os
import sys


def render_table(entries):
    lines = [
        "## decision_scaling (multi-core CI runner)",
        "",
        "| space | la | mode | workers | p50 (ms) | speedup vs w1 |",
        "|---|---|---|---|---|---|",
    ]
    for e in entries:
        speedup = e.get("speedup_vs_w1", 0.0)
        lines.append(
            f"| {e['space']} | {e['la']} | {e['mode']} | {e['workers']} | "
            f"{e['p50_ms']:.3f} | "
            + (f"{speedup:.2f}x |" if speedup else "— |"))
    return "\n".join(lines)


def gate(entries, space, la, mode, min_speedup, out=print):
    """Returns 0 (pass/skip) or 1 (scaling below the bar / no data)."""
    curve = [e for e in entries
             if e["space"] == space and e["la"] == la and e["mode"] == mode]
    if not curve:
        out(f"scaling_gate: no entries for {space}/la{la}/{mode}")
        return 1
    max_w = max(e["workers"] for e in curve)
    if max_w < 2:
        out(f"scaling_gate: runner has max {max_w} pool workers; "
            "gate skipped (scaling needs >= 2)")
        return 0
    top = next(e for e in curve if e["workers"] == max_w)
    speedup = top.get("speedup_vs_w1", 0.0)
    out(f"scaling_gate: {space} la{la} {mode} w{max_w}: "
        f"{speedup:.2f}x vs w1 (bar {min_speedup:.2f}x)")
    if speedup < min_speedup:
        out(f"scaling_gate: FAIL — branch-parallel scaling below the bar")
        return 1
    out("scaling_gate: passed")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("--min-speedup", type=float, default=1.5)
    ap.add_argument("--space", default="tensorflow_cnn")
    ap.add_argument("--la", type=int, default=2)
    ap.add_argument("--mode", default="roots+branch")
    args = ap.parse_args()

    with open(args.bench_json) as f:
        summary = json.load(f)
    entries = summary.get("decision_scaling", [])
    if not entries:
        print(f"scaling_gate: {args.bench_json} has no decision_scaling "
              "section")
        return 1

    report = render_table(entries)
    print(report)
    step = os.environ.get("GITHUB_STEP_SUMMARY")
    if step:
        with open(step, "a") as f:
            f.write(report + "\n")

    return gate(entries, args.space, args.la, args.mode, args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())

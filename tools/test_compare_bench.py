#!/usr/bin/env python3
"""Smoke tests for the perf-regression gate itself (tools/compare_bench.py).

The gate guards every CI run; a regression in its gate/skip/warn logic
would silently disable perf protection, so it is regression-tested here.
Run under ctest as `python3 -m unittest test_compare_bench` from tools/
(registered in the top-level CMakeLists.txt), or standalone the same way.
"""

import json
import os
import sys
import tempfile
import unittest
from unittest import mock

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_bench  # noqa: E402


def summary(spaces_p50=None, mc=None, inc=None, pooled=None, scaling=None,
            svc=None, sscale=None, soa=None, net=None):
    """Builds a minimal BENCH_micro.json-shaped dict."""
    out = {"bench": "micro_decision", "unit": "ms"}
    out["spaces"] = [
        {
            "space": space,
            "lookahead": [{"la": la, "p50_ms": p50}
                          for (la, p50) in entries],
        }
        for space, entries in (spaces_p50 or {}).items()
    ]
    out["multi_constraint"] = mc or []
    out["incremental_refit"] = inc or []
    out["pooled_decision"] = pooled or []
    out["decision_scaling"] = scaling or []
    out["session_throughput"] = svc or []
    out["session_scaling"] = sscale or []
    out["soa_predict"] = soa or []
    out["net_throughput"] = net or []
    return out


def net_entry(space="scout_0", sessions=64, clients=8, shards=2,
              ms_per_decision=6.0, tell_p99=3.0, wire=None):
    out = {"space": space, "optimizer": "lynceus_la1", "sessions": sessions,
           "clients": clients, "shards": shards,
           "ms_per_decision": ms_per_decision,
           "decisions_per_sec": 1000.0 / ms_per_decision,
           "tell_p50_ms": tell_p99 / 2.0, "tell_p99_ms": tell_p99}
    if wire is not None:  # None mimics a pre-negotiation summary
        out["wire"] = wire
    return out


def soa_entry(space="tensorflow_cnn", node_walk=8.0, batch=2.0,
              decision_la2=40.0):
    return {"space": space, "node_walk_p50_ms": node_walk,
            "soa_p50_ms": batch,
            "speedup_p50": node_walk / batch if batch else 0.0,
            "decision_la2_p50_ms": decision_la2}


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        # The gate appends to GITHUB_STEP_SUMMARY when set; keep the test
        # hermetic.
        self.env = mock.patch.dict(os.environ, {}, clear=False)
        self.env.start()
        self.addCleanup(self.env.stop)
        os.environ.pop("GITHUB_STEP_SUMMARY", None)
        os.environ.pop("BENCH_GATE_MODE", None)

    def run_gate(self, baseline, new, extra_args=()):
        base_path = os.path.join(self.tmp.name, "base.json")
        new_path = os.path.join(self.tmp.name, "new.json")
        with open(base_path, "w") as f:
            json.dump(baseline, f)
        with open(new_path, "w") as f:
            json.dump(new, f)
        argv = ["compare_bench.py", f"--baseline={base_path}",
                f"--new={new_path}", *extra_args]
        with mock.patch.object(sys, "argv", argv):
            return compare_bench.main()

    def test_identical_summaries_pass(self):
        s = summary(spaces_p50={"tf": [(0, 2.0), (1, 5.0)]})
        self.assertEqual(self.run_gate(s, s), 0)

    def test_uniform_slowdown_is_machine_speed_not_regression(self):
        base = summary(spaces_p50={"tf": [(0, 2.0), (1, 5.0), (2, 20.0)]})
        new = summary(spaces_p50={"tf": [(0, 6.0), (1, 15.0), (2, 60.0)]})
        self.assertEqual(self.run_gate(base, new), 0)

    def test_single_entry_regression_fails(self):
        base = summary(spaces_p50={"tf": [(0, 2.0), (1, 5.0), (2, 20.0)]})
        new = summary(spaces_p50={"tf": [(0, 2.0), (1, 5.0), (2, 40.0)]})
        self.assertEqual(self.run_gate(base, new), 1)

    def test_warn_mode_reports_without_failing(self):
        base = summary(spaces_p50={"tf": [(0, 2.0), (1, 5.0), (2, 20.0)]})
        new = summary(spaces_p50={"tf": [(0, 2.0), (1, 5.0), (2, 40.0)]})
        self.assertEqual(self.run_gate(base, new, ["--mode=warn"]), 0)

    def test_sub_noise_floor_regression_only_warns(self):
        # The regressed entry's *baseline* sits under the 1 ms noise floor.
        base = summary(spaces_p50={"tf": [(0, 0.05), (1, 5.0), (2, 20.0)]})
        new = summary(spaces_p50={"tf": [(0, 0.5), (1, 5.0), (2, 20.0)]})
        self.assertEqual(self.run_gate(base, new), 0)

    def test_section_only_in_one_file_is_skipped(self):
        base = summary(spaces_p50={"tf": [(1, 5.0), (2, 20.0)]})
        new = summary(
            spaces_p50={"tf": [(1, 5.0), (2, 20.0)]},
            inc=[{"space": "tf", "la": 1, "p50_ms": 999.0}])
        self.assertEqual(self.run_gate(base, new), 0)

    def test_zero_worker_pooled_entries_are_skipped_not_gated(self):
        # A workers==0 entry measures an inline pool (1-core host); even a
        # wild difference must not trip the gate.
        base = summary(
            spaces_p50={"tf": [(1, 5.0), (2, 20.0)]},
            pooled=[{"space": "tf", "la": 2, "workers": 0, "p50_ms": 1.0}])
        new = summary(
            spaces_p50={"tf": [(1, 5.0), (2, 20.0)]},
            pooled=[{"space": "tf", "la": 2, "workers": 0, "p50_ms": 500.0}])
        self.assertEqual(self.run_gate(base, new), 0)

    def test_zero_worker_scaling_entries_are_skipped_not_gated(self):
        base = summary(
            spaces_p50={"tf": [(1, 5.0), (2, 20.0)]},
            scaling=[{"space": "tf", "la": 2, "mode": "roots+branch",
                      "workers": 0, "p50_ms": 1.0}])
        new = summary(
            spaces_p50={"tf": [(1, 5.0), (2, 20.0)]},
            scaling=[{"space": "tf", "la": 2, "mode": "roots+branch",
                      "workers": 0, "p50_ms": 500.0}])
        self.assertEqual(self.run_gate(base, new), 0)

    def test_nonzero_worker_scaling_regression_fails(self):
        entries = {"tf": [(0, 2.0), (1, 5.0), (2, 20.0)]}
        base = summary(
            spaces_p50=entries,
            scaling=[{"space": "tf", "la": 2, "mode": "branch",
                      "workers": 1, "p50_ms": 10.0}])
        new = summary(
            spaces_p50=entries,
            scaling=[{"space": "tf", "la": 2, "mode": "branch",
                      "workers": 1, "p50_ms": 30.0}])
        self.assertEqual(self.run_gate(base, new), 1)

    def test_mismatched_worker_counts_skip_instead_of_comparing(self):
        # 1-core dev-box baseline (w1) vs multi-core CI run (w3): no common
        # scaling key, so nothing is gated and nothing fails.
        entries = {"tf": [(1, 5.0), (2, 20.0)]}
        base = summary(
            spaces_p50=entries,
            scaling=[{"space": "tf", "la": 2, "mode": "branch",
                      "workers": 1, "p50_ms": 25.0}])
        new = summary(
            spaces_p50=entries,
            scaling=[{"space": "tf", "la": 2, "mode": "branch",
                      "workers": 3, "p50_ms": 9.0}])
        self.assertEqual(self.run_gate(base, new), 0)

    def test_mc_incremental_cases_key_on_constraint_count(self):
        # Same space/la with different constraint counts must be distinct
        # gate entries (the "constraints" key tells them apart), and a
        # regression in one of them must still fail the gate.
        entries = {"tf": [(0, 2.0), (1, 5.0), (2, 20.0)]}
        inc_base = [
            {"space": "scout_0", "la": 1, "p50_ms": 3.0},
            {"space": "scout_0", "constraints": 1, "la": 1, "p50_ms": 8.0},
            {"space": "scout_0", "constraints": 2, "la": 1, "p50_ms": 30.0},
        ]
        base = summary(spaces_p50=entries, inc=inc_base)
        flat, notes = compare_bench.load_entries(base)
        self.assertIn("inc/scout_0/la1", flat)
        self.assertIn("inc/mc/scout_0/c1/la1", flat)
        self.assertIn("inc/mc/scout_0/c2/la1", flat)
        self.assertEqual(notes, [])

        inc_new = [dict(e) for e in inc_base]
        inc_new[2] = dict(inc_new[2], p50_ms=90.0)
        new = summary(spaces_p50=entries, inc=inc_new)
        self.assertEqual(self.run_gate(base, new), 1)

    def test_session_throughput_keys_on_sessions_and_cache_mode(self):
        entries = {"tf": [(0, 2.0), (1, 5.0)]}
        svc_base = [
            {"space": "scout_0", "optimizer": "lynceus_la1", "sessions": 1,
             "cache": "shared", "ms_per_decision": 4.0},
            {"space": "scout_0", "optimizer": "lynceus_la1", "sessions": 64,
             "cache": "per-session", "ms_per_decision": 5.0},
        ]
        base = summary(spaces_p50=entries, svc=svc_base)
        flat, notes = compare_bench.load_entries(base)
        self.assertIn("svc/scout_0/s1/shared", flat)
        self.assertIn("svc/scout_0/s64/per-session", flat)
        self.assertEqual(flat["svc/scout_0/s1/shared"], 4.0)
        self.assertEqual(notes, [])

    def test_session_throughput_regression_fails(self):
        entries = {"tf": [(0, 2.0), (1, 5.0), (2, 20.0)]}
        svc_base = [{"space": "scout_0", "optimizer": "lynceus_la1",
                     "sessions": 8, "cache": "shared",
                     "ms_per_decision": 5.0}]
        base = summary(spaces_p50=entries, svc=svc_base)
        svc_new = [dict(svc_base[0], ms_per_decision=25.0)]
        new = summary(spaces_p50=entries, svc=svc_new)
        self.assertEqual(self.run_gate(base, new), 1)
        self.assertEqual(self.run_gate(base, base), 0)

    def test_session_scaling_keys_on_sessions_and_workers(self):
        entries = {"tf": [(0, 2.0), (1, 5.0)]}
        sscale = [
            {"space": "scout_0", "sessions": 64, "workers": 0,
             "ms_per_decision": 0.3},
            {"space": "scout_0", "sessions": 64, "workers": 3,
             "ms_per_decision": 0.1},
        ]
        flat, notes = compare_bench.load_entries(
            summary(spaces_p50=entries, sscale=sscale))
        self.assertIn("sscale/scout_0/s64/w3", flat)
        self.assertEqual(flat["sscale/scout_0/s64/w3"], 0.1)
        # workers == 0 is the FIFO reference: noted, never gated.
        self.assertNotIn("sscale/scout_0/s64/w0", flat)
        self.assertEqual(len(notes), 1)
        self.assertIn("sscale/scout_0/s64/w0", notes[0])

    def test_zero_worker_session_scaling_entries_are_skipped_not_gated(self):
        entries = {"tf": [(1, 5.0), (2, 20.0)]}
        base = summary(
            spaces_p50=entries,
            sscale=[{"space": "scout_0", "sessions": 64, "workers": 0,
                     "ms_per_decision": 0.1}])
        new = summary(
            spaces_p50=entries,
            sscale=[{"space": "scout_0", "sessions": 64, "workers": 0,
                     "ms_per_decision": 50.0}])
        self.assertEqual(self.run_gate(base, new), 0)

    def test_nonzero_worker_session_scaling_regression_fails(self):
        entries = {"tf": [(0, 2.0), (1, 5.0), (2, 20.0)]}
        base = summary(
            spaces_p50=entries,
            sscale=[{"space": "scout_0", "sessions": 64, "workers": 3,
                     "ms_per_decision": 5.0}])
        new = summary(
            spaces_p50=entries,
            sscale=[{"space": "scout_0", "sessions": 64, "workers": 3,
                     "ms_per_decision": 25.0}])
        self.assertEqual(self.run_gate(base, new), 1)
        self.assertEqual(self.run_gate(base, base), 0)

    def test_net_throughput_keys_on_wire_sessions_clients_and_shards(self):
        entries = {"tf": [(0, 2.0), (1, 5.0)]}
        flat, notes = compare_bench.load_entries(
            summary(spaces_p50=entries,
                    net=[net_entry(sessions=8, clients=1, wire="json"),
                         net_entry(sessions=64, clients=8, wire="json"),
                         net_entry(sessions=64, clients=8, wire="binary",
                                   ms_per_decision=4.0, tell_p99=2.0)]))
        self.assertIn("net/scout_0/json/s8/c1/sh2/decision", flat)
        self.assertIn("net/scout_0/json/s8/c1/sh2/tell_p99", flat)
        self.assertIn("net/scout_0/json/s64/c8/sh2/decision", flat)
        self.assertEqual(flat["net/scout_0/json/s64/c8/sh2/decision"], 6.0)
        self.assertEqual(flat["net/scout_0/json/s64/c8/sh2/tell_p99"], 3.0)
        # The binary twin of the same shape is a distinct key, never
        # compared against the json numbers.
        self.assertEqual(flat["net/scout_0/binary/s64/c8/sh2/decision"], 4.0)
        self.assertEqual(flat["net/scout_0/binary/s64/c8/sh2/tell_p99"], 2.0)
        self.assertEqual(notes, [])

    def test_net_throughput_wire_defaults_to_json_for_old_baselines(self):
        # Summaries written before encoding negotiation existed carry no
        # "wire" field; they must land on the same key as new json runs
        # so history stays comparable.
        entries = {"tf": [(0, 2.0), (1, 5.0)]}
        flat, _ = compare_bench.load_entries(
            summary(spaces_p50=entries, net=[net_entry(wire=None)]))
        self.assertIn("net/scout_0/json/s64/c8/sh2/decision", flat)
        base = summary(spaces_p50=entries, net=[net_entry(wire=None)])
        new = summary(spaces_p50=entries,
                      net=[net_entry(wire="json", ms_per_decision=30.0)])
        self.assertEqual(self.run_gate(base, new), 1)

    def test_net_throughput_decision_regression_fails(self):
        entries = {"tf": [(0, 2.0), (1, 5.0), (2, 20.0)]}
        base = summary(spaces_p50=entries, net=[net_entry()])
        new = summary(spaces_p50=entries,
                      net=[net_entry(ms_per_decision=30.0)])
        self.assertEqual(self.run_gate(base, new), 1)
        self.assertEqual(self.run_gate(base, base), 0)

    def test_net_throughput_tell_p99_regression_fails(self):
        entries = {"tf": [(0, 2.0), (1, 5.0), (2, 20.0)]}
        base = summary(spaces_p50=entries, net=[net_entry(tell_p99=3.0)])
        new = summary(spaces_p50=entries, net=[net_entry(tell_p99=15.0)])
        self.assertEqual(self.run_gate(base, new), 1)

    def test_soa_predict_keys_batch_walk_and_decision(self):
        flat, notes = compare_bench.load_entries(
            summary(spaces_p50={"tf": [(0, 2.0)]}, soa=[soa_entry()]))
        self.assertEqual(flat["soa/tensorflow_cnn/batch"], 2.0)
        self.assertEqual(flat["soa/tensorflow_cnn/node_walk"], 8.0)
        self.assertEqual(flat["soa/tensorflow_cnn/decision_la2"], 40.0)
        self.assertEqual(notes, [])

    def test_soa_batch_regression_fails(self):
        # The flat batch route regressing (node walk and decision steady)
        # must trip the gate even though the speedup ratio alone would
        # still look healthy.
        entries = {"tf": [(0, 2.0), (1, 5.0), (2, 20.0)]}
        base = summary(spaces_p50=entries, soa=[soa_entry(batch=2.0)])
        new = summary(spaces_p50=entries, soa=[soa_entry(batch=6.0)])
        self.assertEqual(self.run_gate(base, new), 1)
        self.assertEqual(self.run_gate(base, base), 0)

    def test_soa_decision_regression_fails(self):
        entries = {"tf": [(0, 2.0), (1, 5.0), (2, 20.0)]}
        base = summary(spaces_p50=entries, soa=[soa_entry(decision_la2=40.0)])
        new = summary(spaces_p50=entries, soa=[soa_entry(decision_la2=120.0)])
        self.assertEqual(self.run_gate(base, new), 1)

    def test_soa_entry_without_decision_key_is_batch_and_walk_only(self):
        # Synthetic-grid entries carry no decision dataset, so the LA=2
        # decision key is optional per entry — absent key means absent
        # gate entry, not a crash.
        e = soa_entry(space="grid_64x64")
        del e["decision_la2_p50_ms"]
        flat, notes = compare_bench.load_entries(
            summary(spaces_p50={"tf": [(0, 2.0)]}, soa=[e]))
        self.assertEqual(flat["soa/grid_64x64/batch"], 2.0)
        self.assertEqual(flat["soa/grid_64x64/node_walk"], 8.0)
        self.assertNotIn("soa/grid_64x64/decision_la2", flat)
        self.assertEqual(notes, [])

    def test_missing_soa_section_is_skipped_not_failed(self):
        # Old baselines predate the section: schema growth must not fail.
        entries = {"tf": [(0, 2.0), (1, 5.0)]}
        base = summary(spaces_p50=entries)
        new = summary(spaces_p50=entries, soa=[soa_entry()])
        self.assertEqual(self.run_gate(base, new), 0)

    def test_no_common_entries_is_a_pass(self):
        base = summary(spaces_p50={"tf": [(0, 2.0)]})
        new = summary(spaces_p50={"scout": [(0, 2.0)]})
        self.assertEqual(self.run_gate(base, new), 0)


if __name__ == "__main__":
    unittest.main()

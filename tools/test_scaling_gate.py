#!/usr/bin/env python3
"""Smoke tests for the CI decision-scaling gate (tools/scaling_gate.py) —
same rationale as test_compare_bench.py: the gate protects every CI run,
so its pass / fail / skip logic must itself be regression-tested (a typo
in the mode filter, for instance, would otherwise silently turn the gate
into a no-op forever)."""

import json
import os
import sys
import tempfile
import unittest
from unittest import mock

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import scaling_gate  # noqa: E402


def entry(workers, p50, speedup=0.0, space="tensorflow_cnn", la=2,
          mode="roots+branch"):
    return {"space": space, "la": la, "mode": mode, "workers": workers,
            "p50_ms": p50, "speedup_vs_w1": speedup}


class ScalingGateTest(unittest.TestCase):
    def setUp(self):
        os.environ.pop("GITHUB_STEP_SUMMARY", None)

    def run_main(self, summary, extra_args=()):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench.json")
            with open(path, "w") as f:
                json.dump(summary, f)
            argv = ["scaling_gate.py", path, *extra_args]
            with mock.patch.object(sys, "argv", argv):
                return scaling_gate.main()

    def test_passes_at_or_above_bar(self):
        entries = [entry(1, 20.0), entry(3, 10.0, speedup=2.0)]
        self.assertEqual(self.run_main({"decision_scaling": entries}), 0)

    def test_fails_below_bar(self):
        entries = [entry(1, 20.0), entry(3, 16.0, speedup=1.25)]
        self.assertEqual(self.run_main({"decision_scaling": entries}), 1)

    def test_custom_bar(self):
        entries = [entry(1, 20.0), entry(3, 16.0, speedup=1.25)]
        self.assertEqual(
            self.run_main({"decision_scaling": entries},
                          ["--min-speedup=1.2"]), 0)

    def test_skips_on_single_worker_runner(self):
        # 1-core dev box shape: only w0/w1 measured, no scaling to judge.
        entries = [entry(0, 20.0), entry(1, 21.0)]
        self.assertEqual(self.run_main({"decision_scaling": entries}), 0)

    def test_fails_when_gated_curve_is_missing(self):
        # Entries exist but none match the gated (space, la, mode): this
        # must be a FAILURE, not a skip — a renamed mode string would
        # otherwise disable the gate silently.
        entries = [entry(3, 10.0, speedup=2.0, mode="roots")]
        self.assertEqual(self.run_main({"decision_scaling": entries}), 1)

    def test_fails_without_section(self):
        self.assertEqual(self.run_main({"decision_scaling": []}), 1)

    def test_other_modes_do_not_satisfy_the_gate(self):
        # A healthy "roots" curve must not mask a missing/broken
        # "roots+branch" curve.
        entries = [entry(1, 20.0, mode="roots"),
                   entry(3, 8.0, speedup=2.5, mode="roots")]
        self.assertEqual(self.run_main({"decision_scaling": entries}), 1)

    def test_writes_step_summary_when_requested(self):
        entries = [entry(1, 20.0), entry(3, 10.0, speedup=2.0)]
        with tempfile.TemporaryDirectory() as tmp:
            step = os.path.join(tmp, "summary.md")
            with mock.patch.dict(os.environ,
                                 {"GITHUB_STEP_SUMMARY": step}):
                self.assertEqual(
                    self.run_main({"decision_scaling": entries}), 0)
            with open(step) as f:
                text = f.read()
        self.assertIn("decision_scaling", text)
        self.assertIn("roots+branch", text)


if __name__ == "__main__":
    unittest.main()

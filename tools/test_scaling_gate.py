#!/usr/bin/env python3
"""Smoke tests for the CI decision-scaling gate (tools/scaling_gate.py) —
same rationale as test_compare_bench.py: the gate protects every CI run,
so its pass / fail / skip logic must itself be regression-tested (a typo
in the mode filter, for instance, would otherwise silently turn the gate
into a no-op forever)."""

import json
import os
import sys
import tempfile
import unittest
from unittest import mock

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import scaling_gate  # noqa: E402


def entry(workers, p50, speedup=0.0, space="tensorflow_cnn", la=2,
          mode="roots+branch"):
    return {"space": space, "la": la, "mode": mode, "workers": workers,
            "p50_ms": p50, "speedup_vs_w1": speedup}


def sentry(workers, dps, speedup=0.0, sessions=64, space="scout_0"):
    return {"space": space, "optimizer": "lynceus_la1", "sessions": sessions,
            "workers": workers, "decisions": 372, "ms_per_decision": 1.0,
            "decisions_per_sec": dps, "speedup_vs_w0": speedup}


def nentry(sessions=64, clients=8, shards=2, dps=836.9, p50=4.0, p99=28.5,
           wire=None):
    out = {"space": "scout_0", "optimizer": "lynceus_la1",
           "sessions": sessions, "clients": clients, "shards": shards,
           "decisions": 372, "ms_per_decision": 1.19,
           "decisions_per_sec": dps, "tell_p50_ms": p50, "tell_p99_ms": p99}
    if wire is not None:  # None mimics a pre-negotiation summary
        out["wire"] = wire
    return out


def passing_decision_curve():
    return [entry(1, 20.0), entry(3, 10.0, speedup=2.0)]


class ScalingGateTest(unittest.TestCase):
    def setUp(self):
        os.environ.pop("GITHUB_STEP_SUMMARY", None)

    def run_main(self, summary, extra_args=()):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench.json")
            with open(path, "w") as f:
                json.dump(summary, f)
            argv = ["scaling_gate.py", path, *extra_args]
            with mock.patch.object(sys, "argv", argv):
                return scaling_gate.main()

    def test_passes_at_or_above_bar(self):
        entries = [entry(1, 20.0), entry(3, 10.0, speedup=2.0)]
        self.assertEqual(self.run_main({"decision_scaling": entries}), 0)

    def test_fails_below_bar(self):
        entries = [entry(1, 20.0), entry(3, 16.0, speedup=1.25)]
        self.assertEqual(self.run_main({"decision_scaling": entries}), 1)

    def test_custom_bar(self):
        entries = [entry(1, 20.0), entry(3, 16.0, speedup=1.25)]
        self.assertEqual(
            self.run_main({"decision_scaling": entries},
                          ["--min-speedup=1.2"]), 0)

    def test_skips_on_single_worker_runner(self):
        # 1-core dev box shape: only w0/w1 measured, no scaling to judge.
        entries = [entry(0, 20.0), entry(1, 21.0)]
        self.assertEqual(self.run_main({"decision_scaling": entries}), 0)

    def test_fails_when_gated_curve_is_missing(self):
        # Entries exist but none match the gated (space, la, mode): this
        # must be a FAILURE, not a skip — a renamed mode string would
        # otherwise disable the gate silently.
        entries = [entry(3, 10.0, speedup=2.0, mode="roots")]
        self.assertEqual(self.run_main({"decision_scaling": entries}), 1)

    def test_fails_without_section(self):
        self.assertEqual(self.run_main({"decision_scaling": []}), 1)

    def test_other_modes_do_not_satisfy_the_gate(self):
        # A healthy "roots" curve must not mask a missing/broken
        # "roots+branch" curve.
        entries = [entry(1, 20.0, mode="roots"),
                   entry(3, 8.0, speedup=2.5, mode="roots")]
        self.assertEqual(self.run_main({"decision_scaling": entries}), 1)

    def test_missing_speedup_key_is_malformed_not_sub_bar(self):
        # The gated entry exists but never got its ratio computed (e.g. a
        # truncated bench run): must fail with a MALFORMED diagnostic, not
        # masquerade as a genuine "0.00x vs w1" scaling regression.
        top = entry(3, 10.0)
        del top["speedup_vs_w1"]
        entries = [entry(1, 20.0), top]
        messages = []
        rc = scaling_gate.gate(entries, "tensorflow_cnn", 2, "roots+branch",
                               1.5, out=messages.append)
        self.assertEqual(rc, 1)
        self.assertTrue(any("MALFORMED" in m for m in messages), messages)
        self.assertFalse(any("below the bar" in m for m in messages),
                         messages)

    def test_genuine_zero_speedup_is_sub_bar_not_malformed(self):
        # The converse: an explicit sub-bar ratio reports the scaling
        # failure, never the malformed-section diagnostic.
        entries = [entry(1, 20.0), entry(3, 30.0, speedup=0.0)]
        messages = []
        rc = scaling_gate.gate(entries, "tensorflow_cnn", 2, "roots+branch",
                               1.5, out=messages.append)
        self.assertEqual(rc, 1)
        self.assertTrue(any("below the bar" in m for m in messages),
                        messages)
        self.assertFalse(any("MALFORMED" in m for m in messages), messages)

    def test_session_missing_speedup_key_is_malformed_not_sub_bar(self):
        top = sentry(7, 11000.0)
        del top["speedup_vs_w0"]
        sessions = [sentry(0, 3000.0), top]
        messages = []
        rc = scaling_gate.gate_sessions(sessions, 64, 3.0,
                                        out=messages.append)
        self.assertEqual(rc, 1)
        self.assertTrue(any("MALFORMED" in m for m in messages), messages)
        self.assertFalse(any("below the bar" in m for m in messages),
                         messages)

    def test_session_genuine_zero_speedup_is_sub_bar_not_malformed(self):
        sessions = [sentry(0, 3000.0), sentry(7, 2000.0, speedup=0.0)]
        messages = []
        rc = scaling_gate.gate_sessions(sessions, 64, 3.0,
                                        out=messages.append)
        self.assertEqual(rc, 1)
        self.assertTrue(any("below the bar" in m for m in messages),
                        messages)
        self.assertFalse(any("MALFORMED" in m for m in messages), messages)

    def test_session_gate_passes_at_or_above_bar(self):
        sessions = [sentry(0, 3000.0), sentry(1, 2800.0),
                    sentry(7, 11000.0, speedup=3.7)]
        self.assertEqual(
            self.run_main({"decision_scaling": passing_decision_curve(),
                           "session_scaling": sessions}), 0)

    def test_session_gate_fails_below_bar(self):
        sessions = [sentry(0, 3000.0), sentry(1, 2800.0),
                    sentry(7, 6000.0, speedup=2.0)]
        self.assertEqual(
            self.run_main({"decision_scaling": passing_decision_curve(),
                           "session_scaling": sessions}), 1)

    def test_session_gate_custom_bar_and_session_count(self):
        sessions = [sentry(0, 3000.0, sessions=8),
                    sentry(3, 6500.0, speedup=2.1, sessions=8)]
        args = ["--sessions=8", "--session-min-speedup=2.0"]
        self.assertEqual(
            self.run_main({"decision_scaling": passing_decision_curve(),
                           "session_scaling": sessions}, args), 0)

    def test_session_gate_skips_on_single_worker_runner(self):
        # 1-core dev box shape: throughput mode only measured at w0/w1.
        sessions = [sentry(0, 3000.0), sentry(1, 2800.0, speedup=0.93)]
        self.assertEqual(
            self.run_main({"decision_scaling": passing_decision_curve(),
                           "session_scaling": sessions}), 0)

    def test_session_gate_fails_when_gated_session_count_is_missing(self):
        # Entries exist but not for the gated session count: failure, not
        # skip — a changed bench config must not disable the gate.
        sessions = [sentry(0, 3000.0, sessions=8),
                    sentry(7, 11000.0, speedup=3.7, sessions=8)]
        self.assertEqual(
            self.run_main({"decision_scaling": passing_decision_curve(),
                           "session_scaling": sessions}), 1)

    def test_missing_session_section_passes_unless_required(self):
        # Backward compat: old summaries without session_scaling still pass
        # by default, but CI passes --require-sessions so a silently
        # dropped bench section is a hard failure there.
        summary = {"decision_scaling": passing_decision_curve()}
        self.assertEqual(self.run_main(summary), 0)
        self.assertEqual(
            self.run_main(summary, ["--require-sessions"]), 1)

    def test_session_failure_not_masked_by_decision_pass(self):
        sessions = [sentry(0, 3000.0), sentry(1, 2800.0),
                    sentry(7, 4000.0, speedup=1.3)]
        self.assertEqual(
            self.run_main({"decision_scaling": passing_decision_curve(),
                           "session_scaling": sessions}), 1)

    def test_net_throughput_rendered_next_to_session_scaling(self):
        # The TCP front-end curve is recorded in the job summary alongside
        # session_scaling (so in-process vs over-the-wire throughput read
        # side by side) but carries no gate of its own here — a weak
        # net number must not fail the scaling job.
        sessions = [sentry(0, 3000.0), sentry(7, 11000.0, speedup=3.7)]
        summary = {"decision_scaling": passing_decision_curve(),
                   "session_scaling": sessions,
                   "net_throughput": [nentry(sessions=8, clients=1,
                                             dps=285.9, p50=1.4, p99=3.5),
                                      nentry()]}
        with tempfile.TemporaryDirectory() as tmp:
            step = os.path.join(tmp, "summary.md")
            with mock.patch.dict(os.environ,
                                 {"GITHUB_STEP_SUMMARY": step}):
                self.assertEqual(self.run_main(summary), 0)
            with open(step) as f:
                text = f.read()
        self.assertIn("net_throughput", text)
        # wire=None (pre-negotiation summary) renders as the json column
        # default.
        self.assertIn("| scout_0 | json | 64 | 8 | 2 | 372 | 837 | 4.000 | "
                      "28.500 |", text)
        # Both tables land in one summary, in-process first; no wire-tax
        # table without a json/binary pair of the same shape.
        self.assertLess(text.index("session_scaling"),
                        text.index("net_throughput"))
        self.assertNotIn("wire tax", text)

    def test_wire_tax_table_pairs_json_and_binary_shapes(self):
        # A shape measured under BOTH encodings gets a wire-tax row with
        # the binary gain; an unpaired shape (binary-only here) does not.
        summary = {"decision_scaling": passing_decision_curve(),
                   "session_scaling": [sentry(0, 3000.0),
                                       sentry(7, 11000.0, speedup=3.7)],
                   "net_throughput": [
                       nentry(wire="json", dps=1000.0, p99=20.0),
                       nentry(wire="binary", dps=1150.0, p99=18.0),
                       nentry(sessions=8, clients=1, wire="binary",
                              dps=1185.0)]}
        with tempfile.TemporaryDirectory() as tmp:
            step = os.path.join(tmp, "summary.md")
            with mock.patch.dict(os.environ,
                                 {"GITHUB_STEP_SUMMARY": step}):
                self.assertEqual(self.run_main(summary), 0)
            with open(step) as f:
                text = f.read()
        self.assertIn("wire tax", text)
        self.assertIn("| scout_0 | 64 | 8 | 2 | 1000 | 1150 | +15.0% | "
                      "20.00 | 18.00 |", text)
        # Unpaired 8-session shape stays out of the wire-tax table (one
        # row only: header, separator, the 64-session pair).
        wire_section = text[text.index("wire tax"):]
        self.assertNotIn("| scout_0 | 8 | 1 |", wire_section)

    def test_wire_tax_table_pairs_old_json_baseline_with_binary(self):
        # Entries without a "wire" field count as json, so a binary run
        # can be compared against a pre-negotiation baseline summary.
        entries = [nentry(dps=837.0, p99=28.5),
                   nentry(wire="binary", dps=1152.0, p99=18.8)]
        table = scaling_gate.render_wire_table(entries)
        self.assertIsNotNone(table)
        self.assertIn("+37.6%", table)
        # All-json sections produce no table at all.
        self.assertIsNone(scaling_gate.render_wire_table(
            [nentry(), nentry(sessions=8, clients=1)]))

    def test_missing_net_section_renders_nothing_and_passes(self):
        summary = {"decision_scaling": passing_decision_curve(),
                   "session_scaling": [sentry(0, 3000.0),
                                       sentry(7, 11000.0, speedup=3.7)]}
        with tempfile.TemporaryDirectory() as tmp:
            step = os.path.join(tmp, "summary.md")
            with mock.patch.dict(os.environ,
                                 {"GITHUB_STEP_SUMMARY": step}):
                self.assertEqual(self.run_main(summary), 0)
            with open(step) as f:
                text = f.read()
        self.assertNotIn("net_throughput", text)

    def test_writes_step_summary_when_requested(self):
        entries = [entry(1, 20.0), entry(3, 10.0, speedup=2.0)]
        with tempfile.TemporaryDirectory() as tmp:
            step = os.path.join(tmp, "summary.md")
            with mock.patch.dict(os.environ,
                                 {"GITHUB_STEP_SUMMARY": step}):
                self.assertEqual(
                    self.run_main({"decision_scaling": entries}), 0)
            with open(step) as f:
                text = f.read()
        self.assertIn("decision_scaling", text)
        self.assertIn("roots+branch", text)


if __name__ == "__main__":
    unittest.main()

# Asserts a CLI tool's failure contract: run TOOL with ARGS and require a
# specific exit code plus a stderr message matching a regex. Registered by
# the top-level CMakeLists as ctest entries (label "tools") so the tools'
# usage errors — unknown flags, malformed numeric values — stay hard exits
# with diagnostics instead of regressing to silent acceptance or uncaught
# std::sto* exceptions (std::terminate shows up here as a wrong exit code).
#
# Usage:
#   cmake -DTOOL=<binary> -DARGS="<space-separated args>"
#         -DEXPECT_EXIT=<code> -DEXPECT_STDERR=<regex>
#         -P check_tool_exit.cmake

if(NOT DEFINED TOOL OR NOT DEFINED EXPECT_EXIT)
  message(FATAL_ERROR "check_tool_exit: TOOL and EXPECT_EXIT are required")
endif()

separate_arguments(tool_args UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND "${TOOL}" ${tool_args}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

# execute_process reports abnormal termination (e.g. an uncaught exception
# aborting the process) as a non-numeric string, which also fails here.
if(NOT rc STREQUAL "${EXPECT_EXIT}")
  message(FATAL_ERROR
      "check_tool_exit: '${TOOL} ${ARGS}' exited with '${rc}', "
      "expected ${EXPECT_EXIT}\nstderr:\n${err}")
endif()

if(DEFINED EXPECT_STDERR AND NOT err MATCHES "${EXPECT_STDERR}")
  message(FATAL_ERROR
      "check_tool_exit: stderr of '${TOOL} ${ARGS}' does not match "
      "'${EXPECT_STDERR}'\nstderr:\n${err}")
endif()

/// trajectory_dump — prints the exploration trajectories of a fixed set of
/// optimizer runs plus an FNV-1a hash per case and one combined hash.
///
/// The output is fully deterministic (fixed workloads, fixed seeds, no
/// timing or environment dependence), so two builds of the same sources
/// must print byte-identical text. CI runs this binary from the Release
/// and the Debug/ASan build and diffs the outputs — a divergence means a
/// build-mode-dependent trajectory (uninitialized read, FP contraction,
/// UB) and fails the pipeline.
///
///   trajectory_dump [--out=PATH] [--incremental] [--branch-parallel]
///                   [--via-steps] [--throughput-workers=N]
///
/// `--incremental` (or the LYNCEUS_INCREMENTAL_REFIT=1 environment toggle)
/// runs every case with Options::incremental_refit on. Those trajectories
/// are *also* fully deterministic (same binary, same output every run) but
/// are expected to differ from the flag-off golden ones — CI runs both
/// variants and uploads their diff as the incremental-vs-scratch artifact,
/// while the cross-build determinism check diffs like against like.
///
/// `--branch-parallel` (or LYNCEUS_BRANCH_PARALLEL=1) runs every case with
/// a thread pool, root fan-out *and* intra-root branch parallelism
/// enabled. Unlike `--incremental` this must NOT change the output: the
/// pooled-determinism contract (core/lookahead.hpp) pins pooled
/// trajectories byte-identical to serial ones, and CI diffs the
/// branch-parallel dump against the serial dump of the same build as a
/// hard check. The header line deliberately omits the flag so the files
/// compare equal.
///
/// `--via-steps` runs every case through the ask/tell stepper protocol
/// (core/stepper.hpp) instead of the optimize() entrypoint, telling each
/// batch's results back in REVERSE order. Like `--branch-parallel` this
/// must NOT change the output — the ask/tell determinism contract pins
/// stepped trajectories byte-identical to the closed loop regardless of
/// completion order — and CI diffs the via-steps dump against the classic
/// dump per build and across toolchains. The header omits this flag too.
///
/// `--throughput-workers=N` (N >= 1) runs every case as a concurrent
/// TuningService session drained through the worker-pool throughput
/// scheduler against the asynchronous replay runner, instead of the
/// classic closed loop. The per-session determinism contract
/// (service/tuning_service.hpp) pins each session's trajectory
/// byte-identical to its solo run, so this dump — including its `--faults`
/// variant — must NOT change the output: CI diffs the throughput dump
/// against the classic dump per build and across toolchains as the
/// throughput-determinism check. The header omits this flag too.
/// Exclusive with --branch-parallel and --via-steps (the throughput
/// scheduler owns the scheduling; mixing modes would test nothing).
///
/// `--faults` appends a fault-injection scenario: concurrent TuningService
/// sessions fed by the asynchronous replay runner under a seeded
/// FaultPlan, with retries, timeouts and quarantine active (the
/// fault-determinism contract in eval/runner.hpp). Every session's id
/// sequence, failure ledger and stop reason are printed and hashed, so CI
/// can diff the faulted dump across build modes exactly like the plain
/// one — a divergence means the failure paths, not just the happy path,
/// depend on the build.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cloud/workloads.hpp"
#include "core/constraints.hpp"
#include "core/lynceus.hpp"
#include "core/stepper.hpp"
#include "eval/experiment.hpp"
#include "eval/runner.hpp"
#include "service/tuning_service.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lynceus;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFFULL;
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

std::uint64_t hash_result(const core::OptimizerResult& r) {
  std::uint64_t h = kFnvOffset;
  for (const auto& s : r.history) h = fnv1a(h, s.id);
  h = fnv1a(h, r.recommendation ? *r.recommendation + 1 : 0);
  h = fnv1a(h, r.recommendation_feasible ? 1 : 0);
  return h;
}

void print_case(std::ostringstream& out, const std::string& name,
                const core::OptimizerResult& r, std::uint64_t& combined) {
  out << name << ": ids=";
  for (std::size_t i = 0; i < r.history.size(); ++i) {
    if (i > 0) out << ",";
    out << r.history[i].id;
  }
  const std::uint64_t h = hash_result(r);
  combined = fnv1a(combined, h);
  out << " rec=" << (r.recommendation ? static_cast<long>(*r.recommendation)
                                      : -1L)
      << " hash=" << h << "\n";
}

/// The --faults scenario: three Lynceus sessions on the scout workload,
/// drained through the TuningService against the asynchronous replay
/// runner under a seeded storm (failures, hangs, stragglers) with the full
/// RunPolicy active. Prints one line per session — id sequence, failure
/// ledger as id@after_samples, recommendation, stop reason — plus a hash
/// over ids, failures and the quarantine bit. The scenario draws no
/// randomness outside the fixed seeds, so it is byte-identical across
/// runs and must stay byte-identical across build modes.
void print_fault_cases(std::ostringstream& out, bool incremental,
                       std::size_t throughput_workers,
                       std::uint64_t& combined) {
  const auto scout = cloud::make_scout_datasets().front();
  const auto problem = eval::make_problem(scout, 3.0);

  eval::FaultPlan plan;
  plan.seed = 99;
  plan.fail_rate = 0.45;
  plan.hang_rate = 0.1;
  plan.straggler_rate = 0.2;
  plan.straggler_factor = 3.0;

  service::TuningService::Options sopts;
  sopts.throughput_workers = throughput_workers;
  sopts.run_policy.max_attempts = 2;
  sopts.run_policy.backoff_base_seconds = 5.0;
  sopts.run_policy.run_timeout_seconds = 600.0;
  sopts.run_policy.quarantine_after = 4;
  service::TuningService svc(sopts);

  std::vector<service::SessionId> ids;
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    core::LynceusOptions opts;
    opts.lookahead = 1;
    opts.screen_width = 24;
    opts.incremental_refit = incremental;
    opts.pool = svc.shared_pool();
    core::LynceusOptimizer lyn(opts);
    ids.push_back(svc.open(lyn.make_stepper(problem, seed)));
  }

  eval::AsyncTableRunner async(scout);
  async.set_fault_plan(plan);
  service::drain(svc, async);

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto r = svc.result(ids[i]);
    const bool quarantined = svc.quarantined(ids[i]);
    out << "faults_s" << (21 + i) << ": ids=";
    for (std::size_t k = 0; k < r.history.size(); ++k) {
      if (k > 0) out << ",";
      out << r.history[k].id;
    }
    out << " failures=";
    for (std::size_t k = 0; k < r.failures.size(); ++k) {
      if (k > 0) out << ",";
      out << r.failures[k].id << "@" << r.failures[k].after_samples;
    }
    std::uint64_t h = hash_result(r);
    for (const auto& f : r.failures) {
      h = fnv1a(h, f.id);
      h = fnv1a(h, f.after_samples);
    }
    h = fnv1a(h, quarantined ? 1 : 0);
    combined = fnv1a(combined, h);
    out << " rec="
        << (r.recommendation ? static_cast<long>(*r.recommendation) : -1L)
        << " stop=\"" << svc.stop_reason(ids[i]) << "\""
        << (quarantined ? " quarantined" : "") << " hash=" << h << "\n";
  }
}

/// The --throughput-workers path: the same five golden cases, opened as
/// concurrent TuningService sessions and drained through the worker-pool
/// throughput scheduler. Sessions are grouped per dataset (one service +
/// one asynchronous replay runner each); the scout service carries the
/// three single-constraint lookaheads *and* the multi-constraint case in
/// one drain — the runner exposes the energy metrics to every session,
/// and the single-constraint steppers ignore them. Results are printed in
/// the classic fixed order so the dump byte-compares against the serial
/// one.
void print_throughput_cases(std::ostringstream& out, bool incremental,
                            std::size_t workers, std::uint64_t& combined) {
  const auto scout = cloud::make_scout_datasets().front();
  const auto tf = cloud::make_tensorflow_dataset(cloud::TfModel::CNN);
  auto energy_of = [&scout](space::ConfigId id) {
    return 0.05 * scout.runtime(id) *
           (1.0 + 0.1 * static_cast<double>(id % 7));
  };

  service::TuningService::Options sopts;
  sopts.throughput_workers = workers;

  service::TuningService scout_svc(sopts);
  std::vector<service::SessionId> scout_ids;
  const auto scout_problem = eval::make_problem(scout, 3.0);
  for (unsigned la = 0; la <= 2; ++la) {
    core::LynceusOptions opts;
    opts.lookahead = la;
    opts.screen_width = 24;
    opts.incremental_refit = incremental;
    core::LynceusOptimizer lyn(opts);
    scout_ids.push_back(scout_svc.open(lyn.make_stepper(scout_problem, 1)));
  }
  {
    double min_energy = 1e300;
    for (space::ConfigId id = 0; id < scout.size(); ++id) {
      if (scout.feasible(id)) {
        min_energy = std::min(min_energy, energy_of(id));
      }
    }
    const double cap = 1.5 * min_energy;
    core::ConstraintDef c;
    c.name = "energy";
    c.metric_index = 0;
    c.threshold = [cap](core::ConfigId) { return cap; };
    core::MultiConstraintOptions opts;
    opts.lookahead = 1;
    opts.incremental_refit = incremental;
    core::MultiConstraintLynceus lyn({c}, opts);
    scout_ids.push_back(scout_svc.open(lyn.make_stepper(scout_problem, 7)));
  }
  eval::AsyncTableRunner scout_async(scout, [&](space::ConfigId id) {
    return std::vector<double>{energy_of(id)};
  });
  service::drain(scout_svc, scout_async);

  service::TuningService tf_svc(sopts);
  core::LynceusOptions tf_opts;
  tf_opts.lookahead = 1;
  tf_opts.screen_width = 24;
  tf_opts.incremental_refit = incremental;
  core::LynceusOptimizer tf_lyn(tf_opts);
  const auto tf_problem = eval::make_problem(tf, 2.0);
  const auto tf_id = tf_svc.open(tf_lyn.make_stepper(tf_problem, 3));
  eval::AsyncTableRunner tf_async(tf);
  service::drain(tf_svc, tf_async);

  for (unsigned la = 0; la <= 2; ++la) {
    print_case(out, "scout_la" + std::to_string(la),
               scout_svc.result(scout_ids[la]), combined);
  }
  print_case(out, "tf_cnn_la1", tf_svc.result(tf_id), combined);
  print_case(out, "scout_mc_la1", scout_svc.result(scout_ids[3]), combined);
}

/// Drives a stepper by explicit ask/tell, resolving every batch in
/// reverse order — the adversarial completion order the determinism
/// contract must absorb.
core::OptimizerResult drive_via_steps(core::OptimizerStepper& stepper,
                                      core::JobRunner& runner) {
  while (true) {
    const core::StepAction& action = stepper.ask();
    if (action.kind == core::StepAction::Kind::Finished) break;
    std::vector<std::pair<core::ConfigId, core::RunResult>> batch;
    for (core::ConfigId id : action.configs) {
      batch.emplace_back(id, runner.run(id));
    }
    std::reverse(batch.begin(), batch.end());
    for (const auto& [id, r] : batch) stepper.tell(id, r);
  }
  return stepper.result();
}

/// The classic closed-loop cases (also the --branch-parallel and
/// --via-steps variants, which must not change the output).
void print_classic_cases(std::ostringstream& out, bool incremental,
                         bool branch_parallel, bool via_steps,
                         util::ThreadPool* pool, std::uint64_t& combined) {
  // Single-constraint Lynceus across lookaheads and spaces. Budgets are
  // the standard b=3 multiple; seeds fixed.
  const auto scout = cloud::make_scout_datasets().front();
  const auto tf = cloud::make_tensorflow_dataset(cloud::TfModel::CNN);
  for (unsigned la = 0; la <= 2; ++la) {
    core::LynceusOptions opts;
    opts.lookahead = la;
    opts.screen_width = 24;
    opts.incremental_refit = incremental;
    opts.pool = pool;
    opts.branch_parallel = branch_parallel;
    core::LynceusOptimizer lyn(opts);
    eval::TableRunner runner(scout);
    const auto problem = eval::make_problem(scout, 3.0);
    const auto r = via_steps
                       ? drive_via_steps(*lyn.make_stepper(problem, 1), runner)
                       : lyn.optimize(problem, runner, 1);
    print_case(out, "scout_la" + std::to_string(la), r, combined);
  }
  {
    core::LynceusOptions opts;
    opts.lookahead = 1;
    opts.screen_width = 24;
    opts.incremental_refit = incremental;
    opts.pool = pool;
    opts.branch_parallel = branch_parallel;
    core::LynceusOptimizer lyn(opts);
    eval::TableRunner runner(tf);
    const auto problem = eval::make_problem(tf, 2.0);
    const auto r = via_steps
                       ? drive_via_steps(*lyn.make_stepper(problem, 3), runner)
                       : lyn.optimize(problem, runner, 3);
    print_case(out, "tf_cnn_la1", r, combined);
  }

  // Multi-constraint run with a synthetic energy cap (same construction
  // as bench_micro's fixture).
  {
    auto energy_of = [&scout](space::ConfigId id) {
      return 0.05 * scout.runtime(id) *
             (1.0 + 0.1 * static_cast<double>(id % 7));
    };
    double min_energy = 1e300;
    for (space::ConfigId id = 0; id < scout.size(); ++id) {
      if (scout.feasible(id)) {
        min_energy = std::min(min_energy, energy_of(id));
      }
    }
    const double cap = 1.5 * min_energy;
    core::ConstraintDef c;
    c.name = "energy";
    c.metric_index = 0;
    c.threshold = [cap](core::ConfigId) { return cap; };
    core::MultiConstraintOptions opts;
    opts.lookahead = 1;
    opts.incremental_refit = incremental;
    opts.pool = pool;
    opts.branch_parallel = branch_parallel;
    core::MultiConstraintLynceus lyn({c}, opts);
    eval::TableRunner runner(scout, [&](space::ConfigId id) {
      return std::vector<double>{energy_of(id)};
    });
    const auto problem = eval::make_problem(scout, 3.0);
    const auto r = via_steps
                       ? drive_via_steps(*lyn.make_stepper(problem, 7), runner)
                       : lyn.optimize(problem, runner, 7);
    print_case(out, "scout_mc_la1", r, combined);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool incremental = lynceus::util::env_flag("LYNCEUS_INCREMENTAL_REFIT");
  bool branch_parallel = lynceus::util::env_flag("LYNCEUS_BRANCH_PARALLEL");
  bool via_steps = false;
  bool faults = false;
  std::size_t throughput_workers = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--incremental") {
      incremental = true;
    } else if (arg == "--branch-parallel") {
      branch_parallel = true;
    } else if (arg == "--via-steps") {
      via_steps = true;
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg.rfind("--throughput-workers=", 0) == 0) {
      // Checked parse: the whole value must be a decimal integer. A bare
      // std::stoul here used to throw uncaught on `=` / `=abc` (terminate
      // instead of a usage error) and silently accept trailing junk.
      const std::string value = arg.substr(21);
      std::size_t consumed = 0;
      bool ok = !value.empty();
      if (ok) {
        try {
          throughput_workers =
              static_cast<std::size_t>(std::stoul(value, &consumed));
        } catch (const std::exception&) {
          ok = false;
        }
      }
      if (!ok || consumed != value.size()) {
        std::fprintf(stderr,
                     "trajectory_dump: invalid --throughput-workers value "
                     "'%s' (expected a non-negative integer)\n",
                     value.c_str());
        return 2;
      }
    } else {
      // Unknown flags used to be silently ignored, so a typo (e.g.
      // --incrmental) produced a scalar dump that *looked* like the
      // requested variant. Fail loudly instead.
      std::fprintf(stderr, "trajectory_dump: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (throughput_workers > 0 && (branch_parallel || via_steps)) {
    std::fprintf(stderr,
                 "trajectory_dump: --throughput-workers is exclusive with "
                 "--branch-parallel/--via-steps\n");
    return 1;
  }

  // Branch-parallel mode exercises root fan-out *and* intra-root branch
  // parallelism on a real pool (at least 2 workers even on 1-core hosts,
  // where default_worker_count() is 0 — oversubscription is fine for a
  // determinism dump; what matters is that the pooled code path runs).
  std::optional<util::ThreadPool> pool;
  if (branch_parallel) {
    pool.emplace(std::max<std::size_t>(util::default_worker_count(), 2));
  }

  std::ostringstream out;
  std::uint64_t combined = kFnvOffset;
  out << "incremental_refit=" << (incremental ? 1 : 0) << "\n";

  if (throughput_workers > 0) {
    print_throughput_cases(out, incremental, throughput_workers, combined);
  } else {
    print_classic_cases(out, incremental, branch_parallel, via_steps,
                        pool ? &*pool : nullptr, combined);
  }

  if (faults) {
    print_fault_cases(out, incremental, throughput_workers, combined);
  }

  out << "combined_hash=" << combined << "\n";
  std::fputs(out.str().c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << out.str();
    if (!f) {
      std::fprintf(stderr, "trajectory_dump: failed to write %s\n",
                   out_path.c_str());
      return 1;
    }
  }
  return 0;
}

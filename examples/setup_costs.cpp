/// Setup-cost-aware tuning (paper §4.4): switching the deployed cluster is
/// not free — booting fresh VMs and re-warming caches costs money, so the
/// ORDER in which configurations are explored matters.
///
/// This example tunes the same TensorFlow job twice: once assuming free
/// reconfiguration and once charging realistic boot/warm-up costs, and
/// shows how the setup-aware run favors exploration sequences that reuse
/// the running cluster.
///
/// Build & run:  ./build/examples/setup_costs

#include <cstdio>

#include "cloud/catalog.hpp"
#include "cloud/workloads.hpp"
#include "core/setup_cost.hpp"
#include "eval/experiment.hpp"
#include "eval/runner.hpp"

int main() {
  using namespace lynceus;

  const cloud::Dataset dataset =
      cloud::make_tensorflow_dataset(cloud::TfModel::Multilayer);
  const auto space = dataset.space_ptr();
  const core::OptimizationProblem problem = eval::make_problem(dataset, 3.0);

  // Cloud setup model over the TensorFlow space: dimension 3 is the VM
  // type, dimension 4 the worker count; each VM boots for ~2 minutes and
  // the new cluster warms up for 1 minute.
  core::CloudSetupModel setup;
  setup.vm_kind = [space](core::ConfigId id) {
    return static_cast<int>(space->levels(id)[3]);
  };
  setup.vm_count = [space](core::ConfigId id) {
    return space->value(id, 4) + 1.0;  // workers + parameter server
  };
  setup.per_vm_price_per_hour = [space](core::ConfigId id) {
    return cloud::t2_catalog()[space->levels(id)[3]].price_per_hour;
  };
  setup.boot_minutes = 2.0;
  setup.warmup_minutes = 1.0;

  auto run_one = [&](bool setup_aware) {
    core::LynceusOptions options;
    options.lookahead = 1;
    options.screen_width = 24;
    if (setup_aware) options.setup_cost = core::make_cloud_setup_cost(setup);
    core::LynceusOptimizer lynceus(options);
    eval::TableRunner runner(dataset);
    return lynceus.optimize(problem, runner, /*seed=*/11);
  };

  const auto free_switch = run_one(false);
  const auto paid_switch = run_one(true);

  // Count how often each run changed the VM type between consecutive
  // explorations (the expensive kind of switch).
  auto type_switches = [&](const core::OptimizerResult& r) {
    std::size_t switches = 0;
    for (std::size_t i = 1; i < r.history.size(); ++i) {
      if (space->levels(r.history[i].id)[3] !=
          space->levels(r.history[i - 1].id)[3]) {
        ++switches;
      }
    }
    return switches;
  };

  std::printf("Job: %s, budget $%.3f\n\n", dataset.job_name().c_str(),
              problem.budget);
  std::printf("%-28s %12s %12s %16s\n", "variant", "explored", "spent($)",
              "vm-type switches");
  std::printf("%-28s %12zu %12.3f %16zu\n", "free reconfiguration",
              free_switch.explorations(), free_switch.budget_spent,
              type_switches(free_switch));
  std::printf("%-28s %12zu %12.3f %16zu\n", "setup costs charged",
              paid_switch.explorations(), paid_switch.budget_spent,
              type_switches(paid_switch));

  auto report = [&](const char* label, const core::OptimizerResult& r) {
    if (r.recommendation) {
      std::printf("\n%s recommendation (CNO %.3f):\n  %s\n", label,
                  dataset.cost(*r.recommendation) / dataset.optimal_cost(),
                  space->describe(*r.recommendation).c_str());
    }
  };
  report("Free-switch", free_switch);
  report("Setup-aware", paid_switch);
  return 0;
}

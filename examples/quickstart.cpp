/// Quickstart: tune a TensorFlow training job (cluster + hyper-parameters)
/// with Lynceus.
///
/// This example replays the bundled synthetic CNN dataset — the same
/// workflow applies to a live deployment by swapping the TableRunner for a
/// JobRunner that provisions real VMs (see examples/custom_job.cpp).
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "cloud/workloads.hpp"
#include "core/lynceus.hpp"
#include "eval/experiment.hpp"
#include "eval/runner.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace lynceus;

  // 1. The workload: the paper's CNN job over 384 configurations
  //    (learning rate x batch x sync/async x VM type x cluster size).
  const cloud::Dataset dataset =
      cloud::make_tensorflow_dataset(cloud::TfModel::CNN);
  std::printf("Job: %s over %zu configurations, deadline Tmax = %.0f s\n",
              dataset.job_name().c_str(), dataset.size(),
              dataset.tmax_seconds());

  // 2. The optimization problem: budget B = N * mean cost * 3 (the paper's
  //    "medium budget"), N bootstrap samples from the 3%-or-dims rule.
  const core::OptimizationProblem problem = eval::make_problem(dataset, 3.0);
  std::printf("Budget: $%.3f, bootstrap samples: %zu\n", problem.budget,
              problem.bootstrap_samples);

  // 3. The optimizer: Lynceus with a 2-step lookahead (paper default).
  //    Root path simulations are independent, so fan them out across the
  //    host's cores by default — the trajectory is identical either way.
  util::ThreadPool pool(util::default_worker_count());
  core::LynceusOptions options;
  options.lookahead = 2;
  options.screen_width = 24;  // bound per-decision time on small machines
  options.pool = &pool;
  core::LynceusOptimizer lynceus(options);

  // 4. Run. The TableRunner replays measured data; each `run` would be a
  //    real cloud deployment in production.
  eval::TableRunner runner(dataset);
  const core::OptimizerResult result =
      lynceus.optimize(problem, runner, /*seed=*/2024);

  // 5. Inspect the outcome.
  if (!result.recommendation) {
    std::printf("No configuration could be tried within the budget.\n");
    return 1;
  }
  const auto best = *result.recommendation;
  std::printf("\nExplored %zu configurations, spent $%.3f of $%.3f\n",
              result.explorations(), result.budget_spent, problem.budget);
  std::printf("Recommended configuration:\n  %s\n",
              dataset.space().describe(best).c_str());
  std::printf("  runtime %.1f s, cost $%.4f per run (optimum: $%.4f)\n",
              dataset.runtime(best), dataset.cost(best),
              dataset.optimal_cost());
  std::printf("  cost normalized to optimal (CNO): %.3f\n",
              dataset.cost(best) / dataset.optimal_cost());
  return 0;
}

/// Exports every bundled synthetic dataset (3 TensorFlow + 18 Scout +
/// 5 CherryPick jobs) as CSV under datasets/ — the equivalent of the
/// dataset release the paper promises ("we will also make available to the
/// systems' community a dataset encompassing three Tensorflow jobs...").
/// The CSVs round-trip through Dataset::load_csv, so external tools and
/// notebooks can consume them and users can replay them without the
/// generator.
///
/// Build & run:  ./build/examples/export_datasets [--dir=datasets]

#include <cstdio>

#include "cloud/workloads.hpp"
#include "eval/report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace lynceus;

  const util::CliFlags flags(argc, argv, {"dir"});
  const std::string dir = flags.get_string("dir", "datasets");
  eval::ensure_directory(dir);

  std::size_t files = 0;
  auto export_one = [&dir, &files](const cloud::Dataset& ds) {
    const std::string path = dir + "/" + ds.job_name() + ".csv";
    ds.save_csv(path);
    std::printf("  %-32s %4zu configs  Tmax %7.1f s  -> %s\n",
                ds.job_name().c_str(), ds.size(), ds.tmax_seconds(),
                path.c_str());
    ++files;
  };

  std::printf("TensorFlow jobs (384 configs, 5 dims):\n");
  for (const auto& ds : cloud::make_tensorflow_datasets()) export_one(ds);
  std::printf("Scout jobs (69 configs, 3 dims):\n");
  for (const auto& ds : cloud::make_scout_datasets()) export_one(ds);
  std::printf("CherryPick jobs (47-72 configs, 3 dims):\n");
  for (const auto& ds : cloud::make_cherrypick_datasets()) export_one(ds);

  std::printf("\nWrote %zu datasets under %s/.\n", files, dir.c_str());
  std::printf(
      "Reload with Dataset::load_csv(path, name, space) using the matching\n"
      "space builder (cloud::tensorflow_space(), cloud::scout_space(), or\n"
      "cloud::cherrypick_space(job, cardinality)).\n");
  return 0;
}

/// Multi-constraint tuning (paper §4.4): minimize cost subject to BOTH a
/// deadline and an energy cap.
///
/// A per-constraint regression model is trained alongside the cost model;
/// the acquisition multiplies the satisfaction probabilities of every
/// constraint, and path simulation speculates jointly on cost and energy
/// via the Cartesian Gauss-Hermite product.
///
/// Build & run:  ./build/examples/multi_constraint

#include <cstdio>

#include "cloud/workloads.hpp"
#include "core/constraints.hpp"
#include "eval/experiment.hpp"
#include "eval/runner.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace lynceus;

  // Workload: a Scout kmeans job over 69 cluster configurations.
  const cloud::Dataset dataset =
      cloud::make_scout_dataset(cloud::scout_job_specs()[10]);  // spark-kmeans
  const auto space = dataset.space_ptr();

  // Synthetic per-run energy (kJ): grows with cluster size and runtime.
  auto energy_of = [&dataset](space::ConfigId id) {
    const double machines = dataset.space().value(id, 2);
    return 0.02 * machines * dataset.runtime(id);
  };

  // The runner reports energy as an auxiliary metric.
  eval::TableRunner runner(dataset, [&](space::ConfigId id) {
    return std::vector<double>{energy_of(id)};
  });

  // Cap: 30% above the least energy any deadline-compliant configuration
  // needs — binding (it rules out the unconstrained optimum below) but
  // satisfiable.
  double min_energy = 1e300;
  for (space::ConfigId id = 0; id < dataset.size(); ++id) {
    if (dataset.feasible(id)) min_energy = std::min(min_energy, energy_of(id));
  }
  const double energy_cap = 1.3 * min_energy;
  core::ConstraintDef energy;
  energy.name = "energy_kj";
  energy.metric_index = 0;
  energy.threshold = [energy_cap](core::ConfigId) { return energy_cap; };

  const core::OptimizationProblem problem = eval::make_problem(dataset, 3.0);
  util::ThreadPool pool(util::default_worker_count());
  core::MultiConstraintOptions options;
  options.lookahead = 1;
  options.pool = &pool;  // root paths fan out across the host's cores
  core::MultiConstraintLynceus lynceus({energy}, options);

  const auto result = lynceus.optimize(problem, runner, /*seed=*/3);

  std::printf("Job: %s  (Tmax %.0f s, energy cap %.0f kJ)\n",
              dataset.job_name().c_str(), dataset.tmax_seconds(), energy_cap);
  std::printf("Explored %zu configurations, spent $%.3f\n",
              result.explorations(), result.budget_spent);
  if (result.recommendation) {
    const auto best = *result.recommendation;
    std::printf("Recommended: %s\n", space->describe(best).c_str());
    std::printf("  runtime %.1f s (deadline %s), energy %.1f kJ (cap %s)\n",
                dataset.runtime(best),
                dataset.runtime(best) <= dataset.tmax_seconds() ? "met"
                                                                : "MISSED",
                energy_of(best),
                energy_of(best) <= energy_cap ? "met" : "MISSED");
    std::printf("  cost $%.4f per run\n", dataset.cost(best));

    // For comparison: the unconstrained optimum may blow the energy cap.
    const auto unconstrained = dataset.optimal();
    std::printf("Unconstrained optimum: %s\n",
                space->describe(unconstrained).c_str());
    std::printf("  cost $%.4f, energy %.1f kJ (%s under the cap)\n",
                dataset.cost(unconstrained), energy_of(unconstrained),
                energy_of(unconstrained) <= energy_cap ? "also" : "NOT");
  }
  return 0;
}

/// Tuning a user-defined job: how to plug YOUR workload into Lynceus.
///
/// The public API needs three things:
///  1. a ConfigSpace describing the knobs (here: a Spark-like job with an
///     executor-count, an executor-size and a compression flag);
///  2. a JobRunner that deploys a configuration and reports runtime + cost
///     (here: an analytic stand-in with artificial measurement noise —
///     replace `run()` with real cluster orchestration);
///  3. the problem definition: deadline Tmax and profiling budget B.
///
/// Build & run:  ./build/examples/custom_job

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/lynceus.hpp"
#include "util/rng.hpp"

namespace {

using namespace lynceus;

/// A pretend deployment: time = serial + work/(executors*size) + shuffle,
/// with compression trading CPU for network. Prices grow with capacity.
class MyClusterRunner final : public core::JobRunner {
 public:
  explicit MyClusterRunner(std::shared_ptr<const space::ConfigSpace> space)
      : space_(std::move(space)), rng_(7) {}

  core::RunResult run(space::ConfigId id) override {
    const double executors = space_->value(id, 0);
    const double cores = space_->value(id, 1);
    const bool compressed = space_->levels(id)[2] == 1;

    const double total_cores = executors * cores;
    double compute = 9000.0 / total_cores;
    double shuffle = 800.0 / executors;
    if (compressed) {
      compute *= 1.15;  // compression costs CPU...
      shuffle *= 0.55;  // ...but saves network
    }
    double runtime = 30.0 + compute + shuffle;
    runtime *= std::exp(rng_.normal(0.0, 0.03));  // measurement noise

    core::RunResult r;
    r.runtime_seconds = runtime;
    r.cost = unit_price(id) * runtime / 3600.0;
    return r;
  }

  [[nodiscard]] double unit_price(space::ConfigId id) const {
    const double executors = space_->value(id, 0);
    const double cores = space_->value(id, 1);
    return executors * (0.05 * cores);  // $0.05 per core-hour
  }

 private:
  std::shared_ptr<const space::ConfigSpace> space_;
  util::Rng rng_;
};

}  // namespace

int main() {
  using namespace lynceus;

  // 1. Describe the knobs.
  auto space = std::make_shared<space::ConfigSpace>(
      "my-spark-job",
      std::vector<space::ParamDomain>{
          space::numeric_param("executors", {2, 4, 8, 16, 32}),
          space::numeric_param("cores_per_executor", {2, 4, 8}),
          space::categorical_param("shuffle_compression", {"off", "on"}),
      });
  std::printf("Search space: %zu configurations\n", space->size());

  // 2. The runner that "deploys" configurations.
  MyClusterRunner runner(space);

  // 3. The problem: finish within 6 minutes; spend at most $2 on tuning.
  core::OptimizationProblem problem;
  problem.space = space;
  problem.unit_price_per_hour.resize(space->size());
  for (std::size_t id = 0; id < space->size(); ++id) {
    problem.unit_price_per_hour[id] =
        runner.unit_price(static_cast<space::ConfigId>(id));
  }
  problem.tmax_seconds = 360.0;
  problem.budget = 2.0;
  problem.bootstrap_samples = core::default_bootstrap_samples(*space);

  // 4. Optimize.
  core::LynceusOptions options;
  options.lookahead = 2;
  core::LynceusOptimizer lynceus(options);
  const auto result = lynceus.optimize(problem, runner, /*seed=*/1);

  // 5. Report.
  std::printf("Explored %zu configurations, spent $%.3f of $%.2f\n",
              result.explorations(), result.budget_spent, problem.budget);
  if (result.recommendation) {
    std::printf("Best configuration found:\n  %s\n",
                space->describe(*result.recommendation).c_str());
    std::printf("  (deadline met: %s)\n",
                result.recommendation_feasible ? "yes" : "no");
  }
  for (const auto& s : result.history) {
    std::printf("  tried %-70s  %6.1f s  $%.4f%s\n",
                space->describe(s.id).c_str(), s.runtime_seconds, s.cost,
                s.feasible ? "" : "  [missed deadline]");
  }
  return 0;
}

/// Inspecting WHY Lynceus picks what it picks: attach a TraceRecorder to
/// the optimizer and dump the per-decision internals — the size of the
/// budget-viable set Γ, the incumbent y*, the remaining budget β, the
/// model's cost prediction for the chosen configuration and the actual
/// outcome. Useful when a tuning run behaves unexpectedly ("why did it
/// stop so early?", "why is it hammering big clusters?").
///
/// Build & run:  ./build/examples/trace_debugging

#include <cstdio>

#include "cloud/workloads.hpp"
#include "core/lynceus.hpp"
#include "core/trace.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "math/stats.hpp"

int main() {
  using namespace lynceus;

  const cloud::Dataset dataset =
      cloud::make_tensorflow_dataset(cloud::TfModel::RNN);
  const core::OptimizationProblem problem = eval::make_problem(dataset, 3.0);

  core::TraceRecorder trace;
  core::LynceusOptions options;
  options.lookahead = 1;
  options.screen_width = 24;
  options.observer = &trace;
  core::LynceusOptimizer lynceus(options);

  eval::TableRunner runner(dataset);
  const auto result = lynceus.optimize(problem, runner, /*seed=*/17);

  std::printf("Bootstrap (%zu LHS samples):\n", trace.bootstrap_samples().size());
  for (const auto& s : trace.bootstrap_samples()) {
    std::printf("  %-72s $%.4f%s\n", dataset.space().describe(s.id).c_str(),
                s.cost, s.feasible ? "" : "  [infeasible]");
  }

  std::printf("\nDecisions (iter | |Γ| | simulated | β before | y* | "
              "predicted -> actual):\n");
  for (std::size_t i = 0; i < trace.decisions().size(); ++i) {
    const auto& d = trace.decisions()[i];
    const auto& run = trace.runs()[i];
    std::printf("  %3zu | %3zu | %2zu | $%7.3f | $%7.4f | $%7.4f -> $%7.4f %s\n",
                d.iteration, d.viable_count, d.simulated_roots,
                d.remaining_budget, d.incumbent, d.predicted_cost, run.cost,
                run.feasible ? "" : "[infeasible]");
  }

  const auto errors = trace.relative_prediction_errors();
  if (!errors.empty()) {
    std::printf("\nModel cost-prediction error (relative): mean %.2f, "
                "median %.2f\n",
                math::mean(errors), math::percentile(errors, 50.0));
  }
  std::printf("Stopped because: %s\n", trace.stop_reason().c_str());
  std::printf("Final CNO: %.3f after %zu explorations ($%.3f spent)\n",
              eval::cno(dataset, result), result.explorations(),
              result.budget_spent);
  return 0;
}

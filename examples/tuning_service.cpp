/// Running a tuning service: multiplex many concurrent tuning sessions
/// over one process with ask/tell steppers (core/stepper.hpp) behind the
/// TuningService (src/service/tuning_service.hpp).
///
/// Three things are demonstrated, mirroring the "Running a tuning
/// service" section of README.md:
///   1. N concurrent sessions — each described by one declarative
///      service::SessionSpec and opened via open_session() — over a
///      shared thread pool + root cache, fed by asynchronously completing
///      runs (simulated here by AsyncTableRunner; a real deployment would
///      launch cloud jobs and tell() results as they land);
///   2. out-of-order completions — cheap runs overtake expensive ones —
///      without perturbing any session's trajectory;
///   3. snapshot/restore: a session is frozen mid-run to JSON, revived in
///      a fresh service (read: after a process restart), and finishes
///      byte-identically.
///
/// Build & run:  ./build/example_tuning_service

#include <cstdio>

#include "cloud/workloads.hpp"
#include "eval/experiment.hpp"
#include "eval/runner.hpp"
#include "service/session_spec.hpp"
#include "service/tuning_service.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace lynceus;

  // The jobs: every Scout workload, tuned concurrently — one session per
  // job, all sharing one pool and one root cache.
  const auto datasets = cloud::make_scout_datasets();
  std::vector<core::OptimizationProblem> problems;
  problems.reserve(datasets.size());
  for (const auto& ds : datasets) problems.push_back(eval::make_problem(ds, 3.0));

  service::TuningService::Options options;
  options.pool_workers = util::default_worker_count();
  options.root_cache_capacity = 8;
  service::TuningService service(options);

  // One async replay runner per dataset (a real service would talk to the
  // cloud provider instead); completions pop in simulated-time order, so
  // sessions' results interleave out of submission order.
  std::vector<eval::AsyncTableRunner> runners;
  runners.reserve(datasets.size());
  std::vector<service::SessionId> sessions;
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    runners.emplace_back(datasets[i]);
    // One declarative spec per session — the same document could arrive
    // as a CLI flag set or a TCP frame (src/net/) instead of C++ code.
    service::SessionSpec spec;
    spec.optimizer = "lynceus";
    spec.lookahead = 1;
    spec.seed = 7;
    spec.problem = &problems[i];
    sessions.push_back(service.open_session(spec));
    std::printf("session %llu: %s (%zu configs)\n",
                static_cast<unsigned long long>(sessions[i]),
                datasets[i].job_name().c_str(), datasets[i].size());
  }

  // The event loop: launch whatever each session asks for, route the
  // earliest-finishing completion back, repeat until every session stops.
  auto drain = [&](service::TuningService& svc) {
    while (true) {
      for (const service::PendingRun& run : svc.next_runs()) {
        runners[run.session].submit(run.session, run.config);
      }
      // Pop the earliest completion across all jobs.
      std::size_t which = runners.size();
      double best = 0.0;
      for (std::size_t i = 0; i < runners.size(); ++i) {
        const auto t = runners[i].next_finish_time();
        if (!t.has_value()) continue;
        if (which == runners.size() || *t < best) {
          which = i;
          best = *t;
        }
      }
      if (which == runners.size()) return;  // all idle
      const auto c = runners[which].next_completion();
      svc.tell(c->tag, c->config, c->result);
    }
  };
  drain(service);

  std::printf("\nall sessions finished:\n");
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto result = service.result(sessions[i]);
    std::printf("  %-28s %2zu runs, $%.4f spent — %s\n",
                datasets[i].job_name().c_str(), result.explorations(),
                result.budget_spent,
                service.stop_reason(sessions[i]).c_str());
  }

  // Snapshot/restore: freeze one session mid-run, revive it elsewhere.
  service::TuningService first;
  const service::SessionSpec frozen_spec =
      service::SessionSpec::lynceus(problems[0], core::LynceusOptions{},
                                    /*seed=*/11);
  const service::SessionId sid = first.open_session(frozen_spec);
  eval::AsyncTableRunner feed(datasets[0]);
  for (const auto& run : first.next_runs()) feed.submit(run.session, run.config);
  // Resolve half the bootstrap, then freeze: in-flight runs stay in
  // flight — told results ride inside the snapshot, the rest are
  // re-asked for after the restore.
  for (std::size_t i = 0; i < problems[0].bootstrap_samples / 2; ++i) {
    const auto c = feed.next_completion();
    first.tell(c->tag, c->config, c->result);
  }
  const std::string frozen = first.snapshot(sid);
  std::printf("\nsnapshot: %zu bytes of JSON mid-bootstrap\n", frozen.size());

  service::TuningService second;  // a fresh process, in spirit
  const service::SessionId revived = second.restore_session(frozen_spec, frozen);
  eval::AsyncTableRunner feed2(datasets[0]);
  service::drain(second, feed2);
  const auto result = second.result(revived);
  std::printf("revived session finished: %zu runs, $%.4f spent — %s\n",
              result.explorations(), result.budget_spent,
              second.stop_reason(revived).c_str());
  return 0;
}

/// Head-to-head comparison of the three optimizers on one workload:
/// RND (random), BO (CherryPick-style greedy constrained EI) and Lynceus
/// (budget-aware + lookahead) — a miniature of the paper's evaluation.
///
/// Build & run:  ./build/examples/compare_optimizers [--runs=20] [--b=3]

#include <cstdio>
#include <iostream>

#include "cloud/workloads.hpp"
#include "eval/experiment.hpp"
#include "eval/report.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace lynceus;

  const util::CliFlags flags(argc, argv, {"runs", "b", "job"});
  eval::ExperimentConfig config;
  config.runs = static_cast<std::size_t>(flags.get_int("runs", 20));
  config.budget_multiplier = flags.get_double("b", 3.0);
  const auto job_index =
      static_cast<std::size_t>(flags.get_int("job", 2));  // terasort

  const auto specs = cloud::scout_job_specs();
  const cloud::Dataset dataset =
      cloud::make_scout_dataset(specs.at(job_index % specs.size()));

  std::printf("Job: %s  (%zu configurations, %zu paired runs, budget b=%g)\n\n",
              dataset.job_name().c_str(), dataset.size(), config.runs,
              config.budget_multiplier);

  eval::Table table(
      {"optimizer", "mean CNO", "p50 CNO", "p90 CNO", "mean NEX"});
  for (const auto& spec :
       {eval::rnd_spec(), eval::bo_spec(), eval::lynceus_spec(2)}) {
    const auto result = run_experiment(dataset, spec, config);
    const auto cno = eval::summarize(result.cnos());
    table.add_row({spec.label, util::format("%.3f", cno.mean),
                   util::format("%.3f", cno.p50),
                   util::format("%.3f", cno.p90),
                   util::format("%.1f", result.mean_nex())});
  }
  table.print(std::cout);
  return 0;
}
